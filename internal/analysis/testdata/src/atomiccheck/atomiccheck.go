// Package atomiccheck is the golden corpus for the atomiccheck checker: the
// hits field is managed with sync/atomic, so every plain access to it is a
// seeded race; total is never atomic and plain accesses stay clean.
package atomiccheck

import "sync/atomic"

type counter struct {
	hits  int64
	total int64
}

func (c *counter) inc() {
	atomic.AddInt64(&c.hits, 1)
}

func (c *counter) read() int64 {
	return atomic.LoadInt64(&c.hits)
}

func (c *counter) racyRead() int64 {
	return c.hits // want `non-atomic access to field hits, which is accessed with sync/atomic at line \d+`
}

func (c *counter) racyWrite() {
	c.hits = 0 // want `non-atomic access to field hits, which is accessed with sync/atomic at line \d+`
}

func (c *counter) racyIncrement() {
	c.hits++ // want `non-atomic access to field hits, which is accessed with sync/atomic at line \d+`
}

// total is never touched atomically, so plain accesses are fine.
func (c *counter) addTotal(n int64) {
	c.total += n
}

func (c *counter) readTotal() int64 {
	return c.total
}

// workPool mirrors the build pool's job counter: workers claim indexes with
// an atomic increment, so any plain access to next races with the pool.
type workPool struct {
	next int64
	jobs []func() error
}

func (p *workPool) claim() int {
	return int(atomic.AddInt64(&p.next, 1)) - 1
}

func (p *workPool) reset() {
	atomic.StoreInt64(&p.next, 0)
}

func (p *workPool) racyProgress() int {
	return int(p.next) // want `non-atomic access to field next, which is accessed with sync/atomic at line \d+`
}

func (p *workPool) racySkipTo(n int64) {
	p.next = n // want `non-atomic access to field next, which is accessed with sync/atomic at line \d+`
}

// metricsRegistry mirrors the observability registry: hot paths bump the
// counters with sync/atomic while snapshot readers run concurrently, so a
// plain read or a reset tears. (The real registry wraps each counter in a
// type whose only accessors are atomic, making the racy variants below
// unwritable — this corpus keeps the raw-field shape the checker guards.)
type metricsRegistry struct {
	hits        uint64
	evictions   uint64
	rowsScanned uint64
}

func (m *metricsRegistry) onHit() {
	atomic.AddUint64(&m.hits, 1)
}

func (m *metricsRegistry) onEvict() {
	atomic.AddUint64(&m.evictions, 1)
}

func (m *metricsRegistry) onRows(n uint64) {
	atomic.AddUint64(&m.rowsScanned, n)
}

// The disciplined snapshot: atomic loads, consistent per counter.
func (m *metricsRegistry) snapshot() (uint64, uint64, uint64) {
	return atomic.LoadUint64(&m.hits), atomic.LoadUint64(&m.evictions), atomic.LoadUint64(&m.rowsScanned)
}

func (m *metricsRegistry) racySnapshot() uint64 {
	return m.hits // want `non-atomic access to field hits, which is accessed with sync/atomic at line \d+`
}

func (m *metricsRegistry) racyReset() {
	m.evictions = 0 // want `non-atomic access to field evictions, which is accessed with sync/atomic at line \d+`
}

func (m *metricsRegistry) racyBatchFlush(local uint64) {
	m.rowsScanned += local // want `non-atomic access to field rowsScanned, which is accessed with sync/atomic at line \d+`
}

// vcacheCounters mirrors the resident vector cache's hit/miss pair: the
// Acquire hot path bumps both atomically with no lock held, so any plain
// access tears against every concurrent lookup.
type vcacheCounters struct {
	vhits   uint64
	vmisses uint64
}

func (c *vcacheCounters) onAcquire(resident bool) {
	if resident {
		atomic.AddUint64(&c.vhits, 1)
		return
	}
	atomic.AddUint64(&c.vmisses, 1)
}

// The disciplined hit-rate read: atomic loads of both counters.
func (c *vcacheCounters) hitRate() float64 {
	h := atomic.LoadUint64(&c.vhits)
	m := atomic.LoadUint64(&c.vmisses)
	if h+m == 0 {
		return 0
	}
	return float64(h) / float64(h+m)
}

func (c *vcacheCounters) racyHitRead() uint64 {
	return c.vhits // want `non-atomic access to field vhits, which is accessed with sync/atomic at line \d+`
}

// Resetting the counters between benchmark phases with plain stores tears
// against in-flight queries; the reset must use atomic stores too.
func (c *vcacheCounters) racyReset() {
	c.vmisses = 0 // want `non-atomic access to field vmisses, which is accessed with sync/atomic at line \d+`
}
