// Package arenacheck is the golden corpus for the arenacheck checker: a
// local rowScratch stands in for exec.RowScratch (the checker matches the
// Arena field by name), with every escape class seeded and the sanctioned
// patterns (growth protocol, scalar reads, copy-out) kept clean.
package arenacheck

type rowScratch struct {
	Arena []int64
}

type cursor struct {
	held []int64
}

var leaked []int64

func carve(s *rowScratch, n int) []int64 {
	start := len(s.Arena)
	for i := 0; i < n; i++ {
		s.Arena = append(s.Arena, 0) // ok: the arena's own growth protocol
	}
	return s.Arena[start:] // want `arena-derived slice returned`
}

func stash(s *rowScratch, c *cursor) {
	c.held = s.Arena[:4] // want `arena-derived slice stored in struct field held`
}

func stashGlobal(s *rowScratch) {
	leaked = append(s.Arena, 1) // want `arena-derived slice stored in package variable leaked`
}

func send(s *rowScratch, ch chan []int64) {
	ch <- s.Arena[1:2] // want `arena-derived slice sent on a channel`
}

func stashInMap(s *rowScratch, m map[string][]int64) {
	m["rows"] = s.Arena[:2] // want `arena-derived slice stored into m\["rows"\]`
}

func viaLocal(s *rowScratch) []int64 {
	tmp := s.Arena[2:8]
	view := tmp[1:]
	return view // want `arena-derived slice returned`
}

// decodeSegment mimics the segment read path: the decoder carves column
// views out of the scratch arena, and handing one to the caller escapes
// exactly like any other arena alias.
func decodeSegment(s *rowScratch, payload []byte) []int64 {
	start := len(s.Arena)
	for range payload {
		s.Arena = append(s.Arena, 0) // ok: the arena's own growth protocol
	}
	hubs := s.Arena[start:]
	return hubs // want `arena-derived slice returned`
}

// Scalars read out of the arena are values, not aliases: always safe.
func scalar(s *rowScratch) int64 {
	v := s.Arena[3]
	return v
}

// Copying out of the arena is the sanctioned way to let row data escape.
func copyOut(s *rowScratch) []int64 {
	out := make([]int64, 4)
	copy(out, s.Arena[:4])
	return out
}

// Function-local iteration over an arena view is fine.
func sum(s *rowScratch) int64 {
	view := s.Arena[:]
	var total int64
	for _, v := range view {
		total += v
	}
	return total
}

// matLike mirrors the vector cache's materialized column: a long-lived
// struct that outlives every scratch row it was built from.
type matLike struct {
	ints []int64
}

// Publishing an arena view as a resident vector is the materialization bug
// arenacheck exists to catch: the next decoded row overwrites the "cached"
// column in place.
func publishArenaAsVector(s *rowScratch, m *matLike) {
	m.ints = s.Arena[:8] // want `arena-derived slice stored in struct field ints`
}

// The sanctioned build: rows flow through the scratch arena, but the
// resident vector is a fresh copy the cache owns outright.
func publishCopiedVector(s *rowScratch, m *matLike) {
	out := make([]int64, 8)
	copy(out, s.Arena[:8])
	m.ints = out
}
