// Package sqlcheck is the golden corpus for the sqlcheck checker. Sinks are
// recognized by callee name, so small local stubs stand in for sqldb.DB and
// core's prepared helper; the SQL itself is still parsed (and fused) with the
// real engine packages inside the checker.
package sqlcheck

import "fmt"

type stmt struct{}

type db struct{}

func (db) Prepare(q string) (*stmt, error)       { return nil, nil }
func (db) CachedPrepare(q string) (*stmt, error) { return nil, nil }
func (db) Query(q string, args ...any) error     { return nil }
func (db) Exec(q string) error                   { return nil }

type store struct{ db db }

// prepared mirrors core's plan-cache helper; its own CachedPrepare call has a
// non-constant argument and is out of lint scope.
func (s store) prepared(format string, a ...any) (*stmt, error) {
	return s.db.CachedPrepare(fmt.Sprintf(format, a...))
}

// fusedEA is the paper's Code 1 EA statement, verbatim from internal/core:
// it must parse and fuse.
const fusedEA = `
WITH outp AS
  (SELECT UNNEST(hubs) AS hub, UNNEST(tds) AS td, UNNEST(tas) AS ta
   FROM %[1]s WHERE v=$1),
inp AS
  (SELECT UNNEST(hubs) AS hub, UNNEST(tds) AS td, UNNEST(tas) AS ta
   FROM %[2]s WHERE v=$2)
SELECT MIN(inp.ta)
FROM outp, inp
WHERE outp.hub=inp.hub AND outp.ta<=inp.td
  AND outp.td>=$3`

// notFused parses fine but matches none of the Codes 1-4 shapes.
const notFused = `SELECT a FROM nums`

func dynamic() string { return "SELECT a FROM nums" }

func examples(s store, d db) {
	_ = d.Query("SELEC hub FROM lout")                   // want `does not parse`
	_ = d.Query("SELECT a FROM nums")                    // ok: parses
	_ = d.Query(fmt.Sprintf("SELECT a FROM %s", "nums")) // ok: constant format, parses after substitution
	_ = d.Query(fmt.Sprintf("SELEC a FROM %s", "nums"))  // want `does not parse`
	_ = d.Exec("CREATE TABLE t (a BIGINT)")              // ok: statement sink accepts DDL
	_ = d.Exec("CREATE TABLE t (")                       // want `does not parse`
	_, _ = d.CachedPrepare("SELECT a FROM nums")         // ok: parse-only sink
	_, _ = d.Prepare("SELECT a FROM nums WHERE")         // want `does not parse`
	_, _ = s.prepared(fusedEA, "lout", "lin")            // ok: Code 1 fuses
	_, _ = s.prepared(notFused)                          // want `does not compile to a fused plan`
	_, _ = s.prepared("SELECT %v FROM t")                // want `unsupported format verb`
	_ = d.Query(dynamic())                               // ok: dynamic SQL is out of lint scope

	//lint:ignore sqlcheck golden corpus proves waivers suppress findings
	_ = d.Query("SELEC waived FROM lint") // ok: waived by the directive above

	/*lint:ignore sqlcheck*/ // want `malformed lint:ignore`
	_ = d.Query("SELECT a FROM nums")
}
