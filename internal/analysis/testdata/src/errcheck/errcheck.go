// Package errcheck is the golden corpus for the errcheck checker: bare call
// statements that drop an error are seeded findings; explicit blank
// assignment, defer, go statements, in-memory writers, and best-effort
// terminal output (fmt.Print* and fmt.Fprint* aimed literally at os.Stdout
// or os.Stderr) are the sanctioned exemptions.
package errcheck

import (
	"bytes"
	"fmt"
	"os"
	"strings"
)

type file struct{}

func (file) Close() error                { return nil }
func (file) Write(p []byte) (int, error) { return len(p), nil }
func (file) Len() int                    { return 0 }

func discard(f file) {
	f.Close()    // want `error result of f\.Close is discarded`
	f.Write(nil) // want `error result of f\.Write is discarded`
}

func fine(f file) error {
	f.Len()         // ok: no error result
	_ = f.Close()   // ok: discard is explicit and visible
	defer f.Close() // ok: defer cannot consume results
	go f.Close()    // ok: go cannot consume results
	if err := f.Close(); err != nil {
		return err
	}
	return f.Close()
}

func writers(f file) string {
	var b strings.Builder
	var buf bytes.Buffer
	b.WriteString("in-memory")    // ok: strings.Builder never fails
	buf.WriteByte('x')            // ok: bytes.Buffer never fails
	fmt.Fprintf(&b, "%d", 1)      // ok: Fprintf into an in-memory writer
	fmt.Fprintln(os.Stderr, "hi") // ok: terminal output is best-effort
	fmt.Println("hi")             // ok: terminal output is best-effort
	fmt.Fprintln(f, "hi")         // want `error result of fmt\.Fprintln is discarded`
	w := os.Stderr
	fmt.Fprintln(w, "hi") // want `error result of fmt\.Fprintln is discarded`
	return b.String() + buf.String()
}
