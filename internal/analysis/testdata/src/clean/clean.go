// Package clean is the negative corpus: a miniature, disciplined version of
// the pool/metrics/SQL plumbing that every checker runs over and must leave
// without a single finding.
package clean

import (
	"fmt"
	"sync"
	"sync/atomic"
)

type db struct{}

func (db) CachedPrepare(q string) error { return nil }

type pagedFile struct{}

func (pagedFile) WritePage(page int, data []byte) error { return nil }

type shard struct {
	mu     sync.Mutex // lockcheck:shard
	frames map[int][]byte
	ops    int64
}

// get follows the pool discipline: critical sections touch only memory, the
// device write happens between them, and the op counter is atomic
// everywhere.
func get(sh *shard, f pagedFile, page int) ([]byte, error) {
	sh.mu.Lock()
	data, ok := sh.frames[page]
	sh.mu.Unlock()
	if ok {
		atomic.AddInt64(&sh.ops, 1)
		return data, nil
	}
	buf := make([]byte, 8)
	if err := f.WritePage(page, buf); err != nil {
		return nil, err
	}
	sh.mu.Lock()
	sh.frames[page] = buf
	sh.mu.Unlock()
	atomic.AddInt64(&sh.ops, 1)
	return buf, nil
}

func ops(sh *shard) int64 { return atomic.LoadInt64(&sh.ops) }

// prepare interpolates a table name exactly the way core does; the constant
// format parses after verb substitution.
func prepare(d db, table string) error {
	return d.CachedPrepare(fmt.Sprintf("SELECT a FROM %s", table))
}

type rowScratch struct {
	Arena []int64
}

// materialize grows the arena and copies the view out before returning it.
func materialize(s *rowScratch, vals []int64) []int64 {
	start := len(s.Arena)
	s.Arena = append(s.Arena, vals...)
	out := make([]int64, len(vals))
	copy(out, s.Arena[start:])
	return out
}

// latched pairs a publication latch with the admission mutex at the levels
// the module documents: the latch (10) is held across re-taking the mutex
// (20), the upward direction lockordercheck accepts.
type latched struct {
	mu    sync.Mutex    // lockcheck:shard level=20
	ready chan struct{} // lockcheck:latch level=10
	val   int64
}

// publish opens the latch under the mutex, builds outside it, and re-locks
// to publish while still holding the latch.
func publish(l *latched, build func() int64) {
	l.mu.Lock()
	latch := make(chan struct{})
	l.ready = latch
	l.mu.Unlock()
	v := build()
	l.mu.Lock()
	l.val = v
	l.ready = nil
	close(latch)
	l.mu.Unlock()
}

// flight/coalescer mirror the serving layer's request-coalescing protocol:
// the per-key latch (10) is opened under the registry mutex (20) — a hold,
// not an acquisition — detached executions publish by re-taking the mutex
// with nothing held, and waiters block on the latch with nothing held.
type flight struct {
	done chan struct{} // lockcheck:latch level=10
	val  int64
}

type coalescer struct {
	mu      sync.Mutex // lockcheck:shard level=20
	flights map[string]*flight
}

// share joins an in-flight execution for key or becomes its leader: the
// leader runs build outside every lock and publishes under the mutex before
// closing the latch; joiners block on the latch only after releasing mu.
func share(c *coalescer, key string, build func() int64) int64 {
	c.mu.Lock()
	if f, ok := c.flights[key]; ok {
		c.mu.Unlock()
		<-f.done
		return f.val
	}
	f := &flight{done: make(chan struct{})}
	c.flights[key] = f
	c.mu.Unlock()
	f.val = build()
	c.mu.Lock()
	delete(c.flights, key)
	close(f.done)
	c.mu.Unlock()
	return f.val
}

// tenantSlot/router mirror the multi-tenant lifecycle protocol: the per-city
// open latch (10) is installed and closed under the router mutex (20), the
// database open and the evicted victim's close — device I/O — both run with
// nothing held, and waiters block on the latch only after releasing mu.
type tenantSlot struct {
	opening chan struct{} // lockcheck:latch level=10
	handle  int64
	pinned  bool
}

type router struct {
	mu    sync.Mutex // lockcheck:shard level=20
	slots map[string]*tenantSlot
}

// acquire opens a cold tenant behind its singleflight latch, closing an
// unpinned victim outside the lock to stay under the cap: all branches
// release the mutex at one point, then waiters block on the latch and the
// opener does its device I/O, both with nothing held.
func acquire(r *router, name, victim string, open func() int64, close_ func(int64)) int64 {
	for {
		r.mu.Lock()
		s := r.slots[name]
		if s.handle != 0 {
			h := s.handle
			s.pinned = true
			r.mu.Unlock()
			return h
		}
		wait := s.opening
		var latch chan struct{}
		var evicted int64
		if wait == nil {
			latch = make(chan struct{})
			s.opening = latch
			if v := r.slots[victim]; v != nil && v.handle != 0 && !v.pinned {
				evicted = v.handle
				v.handle = 0
			}
		}
		r.mu.Unlock()
		if wait != nil {
			<-wait
			continue
		}
		if evicted != 0 {
			close_(evicted)
		}
		h := open()
		r.mu.Lock()
		s.handle = h
		s.opening = nil
		s.pinned = true
		close(latch)
		r.mu.Unlock()
		return h
	}
}

// lookup is allocation-free through the whole scratch protocol: guarded
// growth, self-append, scalar copy-out, and failure paths that may
// allocate.
//
// hotpath — allocheck root for the negative corpus.
func lookup(s *rowScratch, vals []int64, n int) (int64, error) {
	if n < 0 || n >= len(vals) {
		return 0, fmt.Errorf("clean: row %d of %d", n, len(vals))
	}
	if cap(s.Arena)-len(s.Arena) < len(vals) {
		grown := make([]int64, len(s.Arena), len(s.Arena)+len(vals))
		copy(grown, s.Arena)
		s.Arena = grown
	}
	s.Arena = append(s.Arena, vals...)
	return s.Arena[len(s.Arena)-len(vals)+n], nil
}
