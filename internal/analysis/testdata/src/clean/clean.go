// Package clean is the negative corpus: a miniature, disciplined version of
// the pool/metrics/SQL plumbing that every checker runs over and must leave
// without a single finding.
package clean

import (
	"fmt"
	"sync"
	"sync/atomic"
)

type db struct{}

func (db) CachedPrepare(q string) error { return nil }

type pagedFile struct{}

func (pagedFile) WritePage(page int, data []byte) error { return nil }

type shard struct {
	mu     sync.Mutex // lockcheck:shard
	frames map[int][]byte
	ops    int64
}

// get follows the pool discipline: critical sections touch only memory, the
// device write happens between them, and the op counter is atomic
// everywhere.
func get(sh *shard, f pagedFile, page int) ([]byte, error) {
	sh.mu.Lock()
	data, ok := sh.frames[page]
	sh.mu.Unlock()
	if ok {
		atomic.AddInt64(&sh.ops, 1)
		return data, nil
	}
	buf := make([]byte, 8)
	if err := f.WritePage(page, buf); err != nil {
		return nil, err
	}
	sh.mu.Lock()
	sh.frames[page] = buf
	sh.mu.Unlock()
	atomic.AddInt64(&sh.ops, 1)
	return buf, nil
}

func ops(sh *shard) int64 { return atomic.LoadInt64(&sh.ops) }

// prepare interpolates a table name exactly the way core does; the constant
// format parses after verb substitution.
func prepare(d db, table string) error {
	return d.CachedPrepare(fmt.Sprintf("SELECT a FROM %s", table))
}

type rowScratch struct {
	Arena []int64
}

// materialize grows the arena and copies the view out before returning it.
func materialize(s *rowScratch, vals []int64) []int64 {
	start := len(s.Arena)
	s.Arena = append(s.Arena, vals...)
	out := make([]int64, len(vals))
	copy(out, s.Arena[start:])
	return out
}
