// Package allocheck is the golden corpus for the static hot-path allocation
// checker: one hot root seeded with every flagged allocation shape, one hot
// root exercising each sanctioned exemption (growth guard, self-append,
// error returns, panic, cold statements and cold callees), and cold/unmarked
// functions that may allocate freely.
package allocheck

import "fmt"

type point struct{ x, y int }

func (p point) dist() int { return p.x + p.y }

type store interface{ get(k int64) int64 }

// sink is a module-local callee with an interface parameter; calls into it
// are descended, and concrete arguments box at the call site.
func sink(v any) { _ = v }

// hotpath — every statement below is a distinct flagged allocation shape.
func hotBad(s []int64, p point, st store, name string, raw []byte) {
	_ = map[int64]int64{1: 2} // want `map literal allocates \(hot path via hotBad\)`
	_ = []int64{1, 2}         // want `slice literal allocates`
	_ = &point{1, 2}          // want `&composite literal allocates`
	_ = new(point)            // want `new allocates`
	_ = make([]int64, 8)      // want `make outside the capacity-growth guard \(grow only under an if cap\(\.\.\.\) check\)`
	t := append(s, 1)         // want `append outside the arena-growth protocol \(only x = append\(x, \.\.\.\) reusing capacity\)`
	_ = t
	f := func() int { return p.x } // want `closure captures p and allocates`
	_ = f
	g := p.dist // want `method value p\.dist binds its receiver and allocates`
	_ = g
	_ = fmt.Sprintf("%d", 1) // want `fmt\.Sprintf allocates`
	_ = name + "!"           // want `string concatenation allocates`
	_ = []byte(name)         // want `string conversion allocates`
	_ = string(raw)          // want `string conversion allocates`
	sink(p)                  // want `argument p boxes into an interface parameter`
	_ = st.get(1)            // ok: interface dispatch is a stated boundary
}

// hotpath — every statement below is a sanctioned exemption and must come
// out clean.
func hotGood(s []int64, m map[int64]int64, p point, name string, n int) ([]int64, error) {
	if cap(s) < n {
		s = make([]int64, n) // ok: the arena capacity-growth protocol
	}
	s = append(s, 1) // ok: self-append reuses capacity
	m[1] = 2         // ok: map writes are the runtime ratchet's business
	_ = point{1, 2}  // ok: value struct literals live on the stack
	h := point.dist  // ok: method expression, no receiver bound
	_ = h
	f := func(a int) int { return a + 1 } // ok: captures nothing
	_ = f
	sink(nil) // ok: nil boxes no payload
	if n < 0 {
		return nil, fmt.Errorf("allocheck: negative size %d for %s", n, name) // ok: failure paths may allocate
	}
	if n > 1<<20 {
		panic(fmt.Sprintf("allocheck: absurd size %d", n)) // ok: panic arguments are exempt
	}
	// hotpath:cold — a deliberate slow path: the miss branch may rebuild
	// its index from scratch.
	coldIndex := map[int64]int64{1: 2}
	_ = coldIndex
	warmed := cold(n) // ok: cold callees are not descended into
	_ = warmed
	return s, nil
}

// cold allocates freely; hot callers may still call it because the marker
// keeps the walker out.
//
// hotpath:cold — per-restart setup, never on a query path.
func cold(n int) []int64 {
	out := make([]int64, n)
	for i := range out {
		out[i] = int64(i)
	}
	return out
}

// unmarked is neither hot nor reachable from a hot root, so its allocations
// are out of scope.
func unmarked() *point {
	return &point{x: 1, y: 2}
}
