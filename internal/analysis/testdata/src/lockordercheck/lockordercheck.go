// Package lockordercheck is the golden corpus for the lock-order checker: a
// miniature singleflight cache whose latch and mutex are correctly levelled
// (clean), plus seeded versions of every rule — a latch/mutex acquisition
// cycle, nested shard critical sections, and edge classes that never
// documented their place in the order.
package lockordercheck

import "sync"

// --- clean: the production singleflight protocol, correctly levelled -------

type cache struct {
	// mu guards the entry bookkeeping; level 20 orders it above the latch.
	mu sync.Mutex // lockcheck:shard level=20
}

type entry struct {
	building chan struct{} // lockcheck:latch level=10
	val      int
}

// materialize is the coalesced build: the builder opens the latch under the
// mutex, builds outside it, then re-locks to publish while still holding the
// latch — the latch→mutex edge is upward (10 → 20), so this is clean.
func materialize(c *cache, e *entry, build func() int) int {
	for {
		c.mu.Lock()
		if e.val != 0 {
			v := e.val
			c.mu.Unlock()
			return v
		}
		wait := e.building
		var latch chan struct{}
		if wait == nil {
			latch = make(chan struct{})
			e.building = latch
		}
		c.mu.Unlock()
		if wait != nil {
			<-wait // ok: nothing held while waiting
			continue
		}
		v := build()
		c.mu.Lock() // ok: latch (10) held, mutex (20) acquired — upward
		e.building = nil
		close(latch)
		e.val = v
		c.mu.Unlock()
		return v
	}
}

// --- cycle: opposite latch/mutex acquisition orders -------------------------

type node struct {
	mu    sync.Mutex    // lockcheck:shard level=30
	ready chan struct{} // lockcheck:latch level=40
}

// waitUnderLock blocks on the latch while holding the mutex (30 → 40, the
// documented direction), so on its own it is legal…
func waitUnderLock(n *node) {
	n.mu.Lock()
	<-n.ready // want `lock-order cycle among lockordercheck\.node\.mu ↔ lockordercheck\.node\.ready: opposite acquisition orders can deadlock`
	n.mu.Unlock()
}

// …but lockUnderLatch takes them in the opposite order, closing the cycle
// and inverting the documented levels.
func lockUnderLatch(n *node) {
	n.ready = make(chan struct{})
	n.mu.Lock() // want `lock-order violation: lockordercheck\.node\.mu \(level 30\) acquired while lockordercheck\.node\.ready \(level 40\) is held; acquisition levels must strictly increase`
	n.mu.Unlock()
	close(n.ready)
}

// --- nesting: two shard critical sections at once ----------------------------

type shard struct {
	mu sync.Mutex // lockcheck:shard level=50
}

func nested(a, b *shard) {
	a.mu.Lock()
	b.mu.Lock() // want `two shard mutexes held at once: acquiring lockordercheck\.shard\.mu while lockordercheck\.shard\.mu is held \(shard critical sections must not nest\)`
	b.mu.Unlock()
	a.mu.Unlock()
}

// --- documentation gap: edge classes with no level ---------------------------

type gapCache struct {
	// lockcheck:shard
	mu sync.Mutex // want `lock-order documentation gap: lockordercheck\.gapCache\.mu participates in the acquisition order but declares no level; annotate the field comment with level=N`
}

type gapEntry struct {
	// lockcheck:latch
	ready chan struct{} // want `lock-order documentation gap: lockordercheck\.gapEntry\.ready participates in the acquisition order but declares no level; annotate the field comment with level=N`
}

func gapFlight(c *gapCache, e *gapEntry) {
	e.ready = make(chan struct{})
	c.mu.Lock()
	c.mu.Unlock()
	close(e.ready)
}
