// Package directive is the corpus for waiver hygiene: a used lint:ignore
// (suppresses a real finding — stays silent), a stale one (suppresses
// nothing — itself reported), and one naming a checker that did not run
// (never reported; its verdict must wait for a run that could have fired).
// The stale finding lands on the directive's own comment line, which cannot
// also carry a want comment, so TestStaleWaiver asserts on Run's output
// directly instead of through the analysistest harness.
package directive

type file struct{}

func (file) Close() error { return nil }

func used(f file) {
	//lint:ignore errcheck the corpus demonstrates waiver suppression
	f.Close()
}

func stale(f file) error {
	//lint:ignore errcheck nothing on the next line drops an error
	return f.Close()
}

func otherChecker(f file) {
	//lint:ignore sqlcheck sqlcheck does not run over this corpus
	_ = f.Close()
}
