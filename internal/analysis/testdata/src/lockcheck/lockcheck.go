// Package lockcheck is the golden corpus for the lockcheck checker: a
// miniature buffer-pool shard (annotated mutex) plus an ordinary registry
// mutex, with both rule families seeded — I/O and channel operations under a
// shard lock, and unbalanced Lock/Unlock paths.
package lockcheck

import "sync"

type pagedFile struct{}

func (pagedFile) WritePage(page int, data []byte) error { return nil }
func (pagedFile) ReadPage(page int, data []byte) error  { return nil }

type shard struct {
	mu     sync.Mutex // lockcheck:shard
	frames map[int][]byte
	file   pagedFile
}

type registry struct {
	mu    sync.Mutex
	items map[string]int
}

// --- rule A: nothing slow while a shard mutex is held ---

func flushUnderLock(sh *shard) error {
	sh.mu.Lock()
	defer sh.mu.Unlock()
	for page, data := range sh.frames {
		if err := sh.file.WritePage(page, data); err != nil { // want `device I/O \(WritePage\) while shard mutex sh\.mu is held`
			return err
		}
	}
	return nil
}

func (sh *shard) writeAll() error {
	for page, data := range sh.frames {
		if err := sh.file.WritePage(page, data); err != nil {
			return err
		}
	}
	return nil
}

func flushViaHelper(sh *shard) error {
	sh.mu.Lock()
	defer sh.mu.Unlock()
	return sh.writeAll() // want `call to writeAll, which may perform device I/O or block on a channel, while shard mutex sh\.mu is held`
}

func waitUnderLock(sh *shard, ready chan struct{}) {
	sh.mu.Lock()
	<-ready // want `channel receive while shard mutex sh\.mu is held`
	sh.mu.Unlock()
}

func sendUnderLock(sh *shard, ch chan int) {
	sh.mu.Lock()
	ch <- 1 // want `channel send while shard mutex sh\.mu is held`
	sh.mu.Unlock()
}

func selectUnderLock(sh *shard, ch chan int) {
	sh.mu.Lock()
	select { // want `select \(blocking channel operation\) while shard mutex sh\.mu is held`
	case <-ch:
	default:
	}
	sh.mu.Unlock()
}

// --- rule B: every Lock has an Unlock on every path ---

func missingUnlock(r *registry, key string) int {
	r.mu.Lock()
	if v, ok := r.items[key]; ok {
		return v // want `return with r\.mu locked \(Lock at line \d+\): missing Unlock on this path`
	}
	r.mu.Unlock()
	return 0
}

func unbalancedIf(r *registry, cond bool) {
	r.mu.Lock()
	if cond { // want `branches disagree on held locks`
		r.mu.Unlock()
	}
}

func lockSkewInLoop(r *registry, keys []string) {
	for range keys { // want `lock state changes across one loop iteration`
		r.mu.Lock()
	}
}

func doubleLock(r *registry) {
	r.mu.Lock()
	r.mu.Lock() // want `second Lock of r\.mu while already held \(Lock at line \d+\): deadlock`
	r.mu.Unlock()
}

func forgotten(r *registry) {
	r.mu.Lock()
	r.items["x"] = 1
} // want `function ends with r\.mu still locked \(Lock at line \d+\)`

// --- disciplined patterns that must stay clean ---

func cleanDefer(sh *shard, key int) []byte {
	sh.mu.Lock()
	defer sh.mu.Unlock()
	return sh.frames[key]
}

// The pinned-victim protocol: device I/O strictly between the critical
// sections, never inside one.
func cleanWriteBack(sh *shard, page int) error {
	sh.mu.Lock()
	data := sh.frames[page]
	sh.mu.Unlock()
	if err := sh.file.WritePage(page, data); err != nil {
		return err
	}
	sh.mu.Lock()
	delete(sh.frames, page)
	sh.mu.Unlock()
	return nil
}

func cleanEarlyReturn(r *registry, key string) int {
	r.mu.Lock()
	if v, ok := r.items[key]; ok {
		r.mu.Unlock()
		return v
	}
	r.mu.Unlock()
	return 0
}

func cleanDeferredClosure(r *registry) {
	r.mu.Lock()
	defer func() {
		r.items["done"] = 1
		r.mu.Unlock()
	}()
	r.items["x"] = 1
}

// A mutex without the shard annotation may guard I/O: only the pool shards
// carry the no-I/O contract.
func cleanNonShardIO(r *registry, f pagedFile) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	return f.WritePage(0, nil)
}

// close(ch) is a non-blocking channel operation and is how the pool
// publishes frame-load completion under the latch.
func cleanCloseUnderLock(sh *shard, ready chan struct{}) {
	sh.mu.Lock()
	close(ready)
	sh.mu.Unlock()
}

// --- wave-commit / worker-pool patterns (parallel preprocessing) ---

// collector is the build pool's error slot: workers finish their job first
// and only report the result under the lock.
type collector struct {
	mu  sync.Mutex // lockcheck:shard
	err error
}

// The disciplined shape: all work (which may do I/O) happens before the
// critical section; the lock guards only the first-error record.
func cleanCollect(c *collector, job func() error) {
	err := job()
	if err == nil {
		return
	}
	c.mu.Lock()
	if c.err == nil {
		c.err = err
	}
	c.mu.Unlock()
}

func cleanFirstError(c *collector) error {
	c.mu.Lock()
	err := c.err
	c.mu.Unlock()
	return err
}

// Running the job inside the critical section serializes the pool and holds
// a shard mutex across whatever the job does — including device I/O.
func collectUnderLock(c *collector, sh *shard) {
	c.mu.Lock()
	if err := sh.writeAll(); err != nil { // want `call to writeAll, which may perform device I/O or block on a channel, while shard mutex c\.mu is held`
		c.err = err
	}
	c.mu.Unlock()
}

// Publishing a wave result while the commit lock is held deadlocks as soon
// as the channel is full and the reader needs the same lock.
func commitAndNotify(c *collector, done chan int, wave int) {
	c.mu.Lock()
	done <- wave // want `channel send while shard mutex c\.mu is held`
	c.mu.Unlock()
}

// Waiting for the next wave with the commit lock held stalls every worker
// that still has a result to report.
func commitAndWait(c *collector, next chan struct{}) {
	c.mu.Lock()
	<-next // want `channel receive while shard mutex c\.mu is held`
	c.mu.Unlock()
}

// --- metrics registry counters under shard locks (observability layer) ---

// shardMetrics mirrors the pool's eviction counters: plain atomic adds, safe
// to bump while a shard mutex is held because they never block or touch the
// device.
type shardMetrics struct {
	evictions int64
}

// Counting an eviction inside the critical section that performs it is the
// intended pattern and must stay clean: an atomic add holds no lock and does
// no I/O.
func cleanCountEvictionUnderLock(sh *shard, m *shardMetrics, page int) {
	sh.mu.Lock()
	delete(sh.frames, page)
	addEviction(m)
	sh.mu.Unlock()
}

func addEviction(m *shardMetrics) {
	m.evictions++ // single-goroutine corpus stand-in for atomic.AddInt64
}

// Delivering a per-query trace to a hook channel while the shard mutex is
// held blocks every pool access behind a slow consumer.
func traceUnderLock(sh *shard, traces chan int, page int) {
	sh.mu.Lock()
	delete(sh.frames, page)
	traces <- page // want `channel send while shard mutex sh\.mu is held`
	sh.mu.Unlock()
}

// Writing the slow-query log under the shard lock serializes the pool behind
// the log device: the write belongs after Unlock.
func slowLogUnderLock(sh *shard, log pagedFile, page int) error {
	sh.mu.Lock()
	defer sh.mu.Unlock()
	return log.WritePage(page, nil) // want `device I/O \(WritePage\) while shard mutex sh\.mu is held`
}

// --- resident vector cache admission (vcache singleflight) ---

// vcCache mirrors the vector cache: an annotated admission mutex guarding
// the building latch and the byte account, with the decode (device reads)
// strictly between critical sections.
type vcCache struct {
	mu       sync.Mutex // lockcheck:shard
	resident int64
	file     pagedFile
}

type vcEntry struct {
	building chan struct{}
}

// The disciplined singleflight: the latch is created and later closed under
// the lock (close never blocks), while the segment read runs between the two
// critical sections.
func cleanMaterialize(c *vcCache, e *vcEntry, page int) error {
	c.mu.Lock()
	latch := make(chan struct{})
	e.building = latch
	c.mu.Unlock()
	err := c.file.ReadPage(page, nil)
	c.mu.Lock()
	e.building = nil
	close(latch)
	c.resident += 1
	c.mu.Unlock()
	return err
}

// Waiting on another builder's latch inside the critical section deadlocks:
// the builder needs the same lock to publish and release the latch.
func waitForBuildUnderLock(c *vcCache, e *vcEntry) {
	c.mu.Lock()
	<-e.building // want `channel receive while shard mutex c\.mu is held`
	c.mu.Unlock()
}

// Decoding the segment while the admission lock is held serializes every
// lookup in the database behind the device.
func materializeUnderLock(c *vcCache, page int) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.file.ReadPage(page, nil) // want `device I/O \(ReadPage\) while shard mutex c\.mu is held`
}
