package analysis

import (
	"go/ast"
	"go/parser"
	"go/token"
	"strings"
	"testing"
)

// parseBody parses src as a function body and returns its CFG plus the fset
// for position lookups.
func parseBody(t *testing.T, body string) (*CFG, *token.FileSet) {
	t.Helper()
	src := "package p\nfunc f() {\n" + body + "\n}\n"
	fset := token.NewFileSet()
	file, err := parser.ParseFile(fset, "f.go", src, 0)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	fd := file.Decls[0].(*ast.FuncDecl)
	return NewCFG(fd.Body), fset
}

// reachableAssigns walks the CFG from the entry and collects the left-hand
// identifiers of every reachable assignment, in a breadth-first order — a
// compact fingerprint of which statements the graph considers live and how
// they chain.
func reachableAssigns(g *CFG) []string {
	var out []string
	seen := map[*Block]bool{}
	queue := []*Block{g.Blocks[0]}
	for len(queue) > 0 {
		b := queue[0]
		queue = queue[1:]
		if seen[b] {
			continue
		}
		seen[b] = true
		for _, n := range b.Nodes {
			if as, ok := n.(*ast.AssignStmt); ok {
				if id, ok := as.Lhs[0].(*ast.Ident); ok && id.Name != "_" {
					out = append(out, id.Name)
				}
			}
		}
		queue = append(queue, b.Succs...)
	}
	return out
}

func TestCFGBranchesAndLoops(t *testing.T) {
	tests := []struct {
		name string
		body string
		want string // space-joined reachable assignment targets (BFS order)
	}{
		{
			name: "straight line",
			body: "a := 1\nb := 2",
			want: "a b",
		},
		{
			name: "if both arms reachable",
			body: "a := 1\nif a > 0 {\n\tb := 2\n\t_ = b\n} else {\n\tc := 3\n\t_ = c\n}\nd := 4\n_ = d",
			want: "a b c d",
		},
		{
			name: "code after return is unreachable",
			body: "a := 1\n_ = a\nreturn\nb := 2\n_ = b",
			want: "a",
		},
		{
			name: "return inside one arm still reaches the join from the other",
			body: "a := 1\nif a > 0 {\n\treturn\n}\nb := 2\n_ = b",
			want: "a b",
		},
		{
			name: "for body and after-loop both reachable",
			body: "a := 1\nfor i := 0; i < a; i++ {\n\tb := 2\n\t_ = b\n}\nc := 3\n_ = c",
			want: "a i b c",
		},
		{
			name: "condition-less loop exits only via break",
			body: "for {\n\ta := 1\n\t_ = a\n\tif a > 0 {\n\t\tbreak\n\t}\n}\nb := 2\n_ = b",
			want: "a b",
		},
		{
			name: "range loop",
			body: "xs := []int{1}\nfor _, v := range xs {\n\t_ = v\n}\ny := 2\n_ = y",
			want: "xs y",
		},
		{
			name: "switch clauses fan out and rejoin",
			body: "a := 1\nswitch a {\ncase 1:\n\tb := 2\n\t_ = b\ncase 2:\n\tc := 3\n\t_ = c\n}\nd := 4\n_ = d",
			want: "a b c d",
		},
		{
			name: "labeled continue targets the outer loop",
			body: "outer:\nfor i := 0; i < 3; i++ {\n\tfor j := 0; j < 3; j++ {\n\t\tcontinue outer\n\t\ta := 1\n\t\t_ = a\n\t}\n}\nb := 2\n_ = b",
			want: "i j b",
		},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			g, _ := parseBody(t, tc.body)
			got := strings.Join(reachableAssigns(g), " ")
			if got != tc.want {
				t.Errorf("reachable assigns = %q, want %q", got, tc.want)
			}
		})
	}
}

// TestForwardReachingFact solves a tiny forward problem — "has the marker
// assignment executed on every path into this block?" — over a diamond with
// the marker on only one arm, checking both the merge (must-style via AND)
// and the fixpoint around a loop.
func TestForwardReachingFact(t *testing.T) {
	g, _ := parseBody(t, `
a := 0
if a > 0 {
	a = 1
} else {
	_ = a
}
b := a
_ = b
`)
	marked := func(b *Block, in bool) bool {
		out := in
		for _, n := range b.Nodes {
			if as, ok := n.(*ast.AssignStmt); ok && as.Tok == token.ASSIGN {
				// The marker: the plain "a = 1" on one arm (not "_ = a").
				if id, ok := as.Lhs[0].(*ast.Ident); ok && id.Name == "a" {
					out = true
				}
			}
		}
		return out
	}
	and := func(x, y bool) bool { return x && y }
	eq := func(x, y bool) bool { return x == y }
	facts := Forward(g, false, and, marked, eq)

	// The join block (the one holding "b := a") merges a marked arm with an
	// unmarked one, so under AND its entry fact must be false.
	var joinFact, sawJoin bool
	for b, f := range facts {
		for _, n := range b.Nodes {
			if as, ok := n.(*ast.AssignStmt); ok {
				if id, ok := as.Lhs[0].(*ast.Ident); ok && id.Name == "b" {
					joinFact, sawJoin = f, true
				}
			}
		}
	}
	if !sawJoin {
		t.Fatal("no block holds the join assignment b := a")
	}
	if joinFact {
		t.Error("join entry fact = true; AND-merge over a half-marked diamond must yield false")
	}

	// Every reachable block must have a fact; the unreachable-block map must
	// not grow past the block list.
	if len(facts) > len(g.Blocks) {
		t.Errorf("facts for %d blocks, graph has %d", len(facts), len(g.Blocks))
	}
}

// TestForwardLoopFixpoint proves termination and soundness around a cycle: a
// may-style OR problem where the marker sits inside the loop body, so the
// loop head's entry fact flips to true on the second visit.
func TestForwardLoopFixpoint(t *testing.T) {
	g, _ := parseBody(t, `
a := 0
for i := 0; i < 3; i++ {
	a = 1
}
_ = a
`)
	marked := func(b *Block, in bool) bool {
		out := in
		for _, n := range b.Nodes {
			if as, ok := n.(*ast.AssignStmt); ok && as.Tok == token.ASSIGN {
				out = true
			}
		}
		return out
	}
	or := func(x, y bool) bool { return x || y }
	eq := func(x, y bool) bool { return x == y }
	facts := Forward(g, false, or, marked, eq)

	// The loop head is the block holding the condition "i < 3"; after the
	// fixpoint its entry fact must be true (the back edge carries the mark).
	var headFact, sawHead bool
	for b, f := range facts {
		for _, n := range b.Nodes {
			if be, ok := n.(*ast.BinaryExpr); ok && be.Op == token.LSS {
				headFact, sawHead = f, true
			}
		}
	}
	if !sawHead {
		t.Fatal("no block holds the loop condition")
	}
	if !headFact {
		t.Error("loop head entry fact = false; the back edge must carry the mark to fixpoint")
	}
}
