package analysis

// cfg.go is the intraprocedural engine under lockordercheck and allocheck: a
// basic-block control-flow graph over one function body, plus a generic
// worklist solver for forward dataflow problems over that graph.
//
// The graph is deliberately lightweight. Blocks hold the simple statements
// and control-condition expressions of the source in evaluation order;
// structured statements (if/for/range/switch/select) are decomposed into
// blocks and edges and never appear as nodes themselves, so a client may
// inspect each node's full subtree without double-counting control flow.
// Function literals do appear (inside whatever node contains them) — clients
// decide whether a literal's body runs here or elsewhere. goto is modeled
// conservatively as leaving the function, and fallthrough as ending the
// clause; neither occurs in this module.

import (
	"go/ast"
	"go/token"
)

// Block is one straight-line run of nodes: execution enters at the first
// node, runs them in order, and leaves along one of Succs.
type Block struct {
	Index int
	Nodes []ast.Node
	Succs []*Block
}

// CFG is the control-flow graph of a single function body. Blocks[0] is the
// entry; blocks unreachable from it (code after return) may be present but
// carry no edges into them.
type CFG struct {
	Blocks []*Block
}

// NewCFG builds the control-flow graph of body.
func NewCFG(body *ast.BlockStmt) *CFG {
	b := &cfgBuilder{cfg: &CFG{}}
	b.cur = b.newBlock()
	b.stmtList(body.List)
	return b.cfg
}

// Forward solves a forward dataflow problem over g to fixpoint and returns
// every reachable block's entry fact. The client supplies the lattice:
// entry is the fact at function entry, merge joins two facts, transfer folds
// one block's nodes over its entry fact, and equal detects the fixpoint.
// All three functions must be pure — facts are shared between blocks, so
// merge and transfer must return fresh values rather than mutate arguments.
// merge must be monotone over a finite lattice or the solve may not
// terminate.
func Forward[T any](g *CFG, entry T, merge func(T, T) T, transfer func(*Block, T) T, equal func(T, T) bool) map[*Block]T {
	if len(g.Blocks) == 0 {
		return nil
	}
	in := map[*Block]T{g.Blocks[0]: entry}
	queued := map[*Block]bool{g.Blocks[0]: true}
	work := []*Block{g.Blocks[0]}
	for len(work) > 0 {
		blk := work[0]
		work = work[1:]
		queued[blk] = false
		out := transfer(blk, in[blk])
		for _, s := range blk.Succs {
			next := out
			if prev, ok := in[s]; ok {
				next = merge(prev, out)
				if equal(next, prev) {
					continue
				}
			}
			in[s] = next
			if !queued[s] {
				queued[s] = true
				work = append(work, s)
			}
		}
	}
	return in
}

type cfgBuilder struct {
	cfg *CFG
	// cur is the block under construction; nil after a terminator (return,
	// panic, break), making any statements that follow unreachable.
	cur    *Block
	frames []ctrlFrame
}

// ctrlFrame is one enclosing breakable statement (loop, switch or select).
type ctrlFrame struct {
	label      string
	breakTo    *Block
	continueTo *Block // nil for switch/select frames
}

func (b *cfgBuilder) newBlock() *Block {
	blk := &Block{Index: len(b.cfg.Blocks)}
	b.cfg.Blocks = append(b.cfg.Blocks, blk)
	return blk
}

func (b *cfgBuilder) edge(from, to *Block) {
	if from != nil && to != nil {
		from.Succs = append(from.Succs, to)
	}
}

func (b *cfgBuilder) add(n ast.Node) {
	if b.cur != nil && n != nil {
		b.cur.Nodes = append(b.cur.Nodes, n)
	}
}

func (b *cfgBuilder) stmtList(list []ast.Stmt) {
	for _, s := range list {
		b.stmt(s, "")
	}
}

func (b *cfgBuilder) stmt(s ast.Stmt, label string) {
	switch x := s.(type) {
	case *ast.LabeledStmt:
		b.stmt(x.Stmt, x.Label.Name)
	case *ast.BlockStmt:
		b.stmtList(x.List)
	case *ast.ReturnStmt:
		b.add(x)
		b.cur = nil
	case *ast.ExprStmt:
		b.add(x)
		if call, ok := x.X.(*ast.CallExpr); ok && isTerminatorCall(call) {
			b.cur = nil
		}
	case *ast.BranchStmt:
		switch x.Tok {
		case token.BREAK:
			b.edge(b.cur, b.branchTarget(x.Label, false))
			b.cur = nil
		case token.CONTINUE:
			b.edge(b.cur, b.branchTarget(x.Label, true))
			b.cur = nil
		case token.GOTO:
			b.cur = nil
		}
		// fallthrough: the clause simply ends (approximation; unused here).
	case *ast.IfStmt:
		b.ifStmt(x)
	case *ast.ForStmt:
		b.forStmt(x, label)
	case *ast.RangeStmt:
		b.rangeStmt(x, label)
	case *ast.SwitchStmt:
		b.add(x.Init)
		b.add(x.Tag)
		b.clauses(x.Body, label)
	case *ast.TypeSwitchStmt:
		b.add(x.Init)
		b.add(x.Assign)
		b.clauses(x.Body, label)
	case *ast.SelectStmt:
		b.clauses(x.Body, label)
	default:
		// Assign, Decl, IncDec, Send, Defer, Go, Empty: straight-line.
		b.add(s)
	}
}

func (b *cfgBuilder) ifStmt(x *ast.IfStmt) {
	b.add(x.Init)
	b.add(x.Cond)
	cond := b.cur
	after := b.newBlock()
	then := b.newBlock()
	b.edge(cond, then)
	b.cur = then
	b.stmtList(x.Body.List)
	b.edge(b.cur, after)
	if x.Else != nil {
		els := b.newBlock()
		b.edge(cond, els)
		b.cur = els
		b.stmt(x.Else, "")
		b.edge(b.cur, after)
	} else {
		b.edge(cond, after)
	}
	b.cur = after
}

func (b *cfgBuilder) forStmt(x *ast.ForStmt, label string) {
	b.add(x.Init)
	head := b.newBlock()
	b.edge(b.cur, head)
	if x.Cond != nil {
		head.Nodes = append(head.Nodes, x.Cond)
	}
	body := b.newBlock()
	post := b.newBlock()
	after := b.newBlock()
	b.edge(head, body)
	if x.Cond != nil {
		b.edge(head, after) // a condition-less for exits only via break
	}
	b.frames = append(b.frames, ctrlFrame{label: label, breakTo: after, continueTo: post})
	b.cur = body
	b.stmtList(x.Body.List)
	b.frames = b.frames[:len(b.frames)-1]
	b.edge(b.cur, post)
	if x.Post != nil {
		post.Nodes = append(post.Nodes, x.Post)
	}
	b.edge(post, head)
	b.cur = after
}

func (b *cfgBuilder) rangeStmt(x *ast.RangeStmt, label string) {
	b.add(x.X)
	head := b.newBlock()
	b.edge(b.cur, head)
	body := b.newBlock()
	after := b.newBlock()
	b.edge(head, body)
	b.edge(head, after)
	b.frames = append(b.frames, ctrlFrame{label: label, breakTo: after, continueTo: head})
	b.cur = body
	b.stmtList(x.Body.List)
	b.frames = b.frames[:len(b.frames)-1]
	b.edge(b.cur, head)
	b.cur = after
}

// clauses lowers a switch, type switch or select body. Case expressions and
// comm statements evaluate in the dispatching block or at the head of their
// clause; every clause flows to the common after-block.
func (b *cfgBuilder) clauses(body *ast.BlockStmt, label string) {
	start := b.cur
	after := b.newBlock()
	b.frames = append(b.frames, ctrlFrame{label: label, breakTo: after})
	hasDefault := false
	for _, clause := range body.List {
		blk := b.newBlock()
		b.edge(start, blk)
		b.cur = blk
		var stmts []ast.Stmt
		switch cl := clause.(type) {
		case *ast.CaseClause:
			if cl.List == nil {
				hasDefault = true
			}
			for _, e := range cl.List {
				if start != nil {
					start.Nodes = append(start.Nodes, e)
				}
			}
			stmts = cl.Body
		case *ast.CommClause:
			if cl.Comm == nil {
				hasDefault = true
			} else {
				blk.Nodes = append(blk.Nodes, cl.Comm)
			}
			stmts = cl.Body
		}
		b.stmtList(stmts)
		b.edge(b.cur, after)
	}
	if !hasDefault {
		b.edge(start, after)
	}
	b.frames = b.frames[:len(b.frames)-1]
	b.cur = after
}

func (b *cfgBuilder) branchTarget(label *ast.Ident, isContinue bool) *Block {
	for i := len(b.frames) - 1; i >= 0; i-- {
		fr := b.frames[i]
		if isContinue && fr.continueTo == nil {
			continue // continue skips switch/select frames
		}
		if label == nil || fr.label == label.Name {
			if isContinue {
				return fr.continueTo
			}
			return fr.breakTo
		}
	}
	return nil
}
