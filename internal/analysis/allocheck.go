package analysis

// allocheck statically enforces the allocation discipline the runtime
// TestFusedAllocsBudget ratchet measures: every function reachable from a
// "// hotpath" annotated root through static module-local calls must be free
// of hidden heap allocations. The ratchet catches a regression after the
// fact, on the workloads it happens to run; this checker catches it at lint
// time, on every path.
//
// Annotation contract (doc-comment lines, first word decides):
//
//	// hotpath — this function is a hot-path root; everything it can
//	//   statically reach must be allocation-free.
//	// hotpath:cold — this function is off the hot path (not scanned, not
//	//   descended into) even when a hot function calls it.
//
// A "hotpath:cold" marker anywhere in the comment block directly above a
// statement (or trailing on its first line) inside a hot function exempts
// just that statement's subtree — the escape hatch for deliberate slow
// paths like a miss that falls back to materialization.
//
// Flagged inside hot functions: map and slice composite literals, &T{}
// literals, new, make and append outside the arena capacity-growth protocol
// (make is allowed under an enclosing "if cap(...)" growth guard; append
// only as x = append(x, ...) self-append), closures that capture variables,
// bound method values, any fmt call, string concatenation and string<->byte
// conversions, and interface boxing at call sites (non-constant concrete
// arguments passed to interface parameters).
//
// Deliberate boundaries, documented in DESIGN.md §12: value-struct literals
// and map writes are not flagged (the runtime ratchet governs those);
// interface dispatch, function values and the stdlib are not descended
// into; expressions building an error return value and arguments to panic
// are exempt — failure paths may allocate.

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

type allocCheck struct{}

// NewAllocCheck returns the static hot-path allocation checker.
func NewAllocCheck() Checker { return allocCheck{} }

func (allocCheck) Name() string { return "allocheck" }

func (allocCheck) CheckModule(pkgs []*Package) []Finding {
	a := &allocWalker{
		idx:     indexModule(pkgs),
		cold:    map[*types.Func]bool{},
		visited: map[*types.Func]bool{},
		coldLn:  map[string]map[int]bool{},
	}
	for _, p := range pkgs {
		a.collectMarkers(p)
	}
	// Deterministic scan order: roots sorted by position.
	sort.Slice(a.roots, func(i, j int) bool {
		return posLess(a.roots[i].pkg.Fset.Position(a.roots[i].decl.Pos()),
			a.roots[j].pkg.Fset.Position(a.roots[j].decl.Pos()))
	})
	for _, r := range a.roots {
		a.walk(r.fn, r.fn.Name())
	}
	return a.findings
}

const (
	hotMarker  = "hotpath"
	coldMarker = "hotpath:cold"
)

type hotRoot struct {
	fn   *types.Func
	pkg  *Package
	decl *ast.FuncDecl
}

type allocWalker struct {
	idx      *moduleIndex
	roots    []hotRoot
	cold     map[*types.Func]bool
	coldLn   map[string]map[int]bool // file -> lines carrying a statement-level cold marker
	visited  map[*types.Func]bool
	findings []Finding
}

// markerKind classifies one comment line: "" (neither), hot, or cold.
func markerKind(line string) string {
	fields := strings.Fields(line)
	if len(fields) == 0 {
		return ""
	}
	switch fields[0] {
	case hotMarker:
		return hotMarker
	case coldMarker:
		return coldMarker
	}
	return ""
}

// collectMarkers finds hot roots, cold functions, and statement-level cold
// lines in one package.
func (a *allocWalker) collectMarkers(p *Package) {
	for _, file := range p.Files {
		for _, cg := range file.Comments {
			for _, c := range cg.List {
				text := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
				if markerKind(text) != coldMarker {
					continue
				}
				// The marker covers the statement the comment is attached to:
				// the line after its comment group ends (a marker anywhere in
				// a multi-line comment block covers the statement below it)
				// and the marker's own line (trailing same-line comments).
				pos := p.Fset.Position(c.Pos())
				if a.coldLn[pos.Filename] == nil {
					a.coldLn[pos.Filename] = map[int]bool{}
				}
				a.coldLn[pos.Filename][pos.Line] = true
				a.coldLn[pos.Filename][p.Fset.Position(cg.End()).Line+1] = true
			}
		}
		for _, d := range file.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Doc == nil {
				continue
			}
			fn, ok := p.Info.Defs[fd.Name].(*types.Func)
			if !ok {
				continue
			}
			hot, cold := false, false
			for _, c := range fd.Doc.List {
				switch markerKind(strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))) {
				case hotMarker:
					hot = true
				case coldMarker:
					cold = true
				}
			}
			if cold {
				a.cold[fn] = true
			} else if hot {
				a.roots = append(a.roots, hotRoot{fn: fn, pkg: p, decl: fd})
			}
		}
	}
}

// coldStmt reports whether a statement is covered by a cold marker: a
// trailing comment on its first line, or a comment block ending on the line
// directly above it.
func (a *allocWalker) coldStmt(p *Package, s ast.Stmt) bool {
	pos := p.Fset.Position(s.Pos())
	lines := a.coldLn[pos.Filename]
	return lines != nil && lines[pos.Line]
}

// walk scans fn's body and recurses into every statically resolvable
// module-local callee that is not marked cold.
func (a *allocWalker) walk(fn *types.Func, root string) {
	if a.visited[fn] || a.cold[fn] {
		return
	}
	a.visited[fn] = true
	fd, ok := a.idx.funcs[fn]
	if !ok {
		return
	}
	a.scanBody(fd.pkg, fd.decl.Body, fn, root)
}

func (a *allocWalker) report(p *Package, pos token.Pos, root, format string, args ...any) {
	msg := fmt.Sprintf(format, args...)
	a.findings = append(a.findings, Finding{
		Pos:     p.Fset.Position(pos),
		Checker: "allocheck",
		Message: fmt.Sprintf("%s (hot path via %s)", msg, root),
	})
}

func (a *allocWalker) scanBody(p *Package, body *ast.BlockStmt, fn *types.Func, root string) {
	parents := parentMap(body)
	skip := map[ast.Node]bool{}
	ast.Inspect(body, func(n ast.Node) bool {
		if n == nil || skip[n] {
			return false
		}
		if s, ok := n.(ast.Stmt); ok && a.coldStmt(p, s) {
			return false
		}
		switch x := n.(type) {
		case *ast.ReturnStmt:
			for _, res := range x.Results {
				if a.errorResult(p, res) {
					skip[res] = true // error construction: failure paths may allocate
				}
			}
		case *ast.FuncLit:
			if capt := a.captured(p, x); capt != "" {
				a.report(p, x.Pos(), root, "closure captures %s and allocates", capt)
			}
			return false
		case *ast.CompositeLit:
			switch p.Info.Types[x].Type.Underlying().(type) {
			case *types.Map:
				a.report(p, x.Pos(), root, "map literal allocates")
			case *types.Slice:
				a.report(p, x.Pos(), root, "slice literal allocates")
			}
		case *ast.UnaryExpr:
			if x.Op == token.AND {
				if lit, ok := ast.Unparen(x.X).(*ast.CompositeLit); ok {
					a.report(p, x.Pos(), root, "&composite literal allocates")
					skip[lit] = true
				}
			}
		case *ast.BinaryExpr:
			if x.Op == token.ADD && isStringType(p.Info.Types[x].Type) {
				a.report(p, x.Pos(), root, "string concatenation allocates")
			}
		case *ast.SelectorExpr:
			a.checkMethodValue(p, x, parents, root)
		case *ast.CallExpr:
			if a.checkCall(p, x, parents, fn, root) {
				return false
			}
		}
		return true
	})
}

// checkCall handles every call form; it returns true when the subtree has
// been fully handled and descent should stop.
func (a *allocWalker) checkCall(p *Package, call *ast.CallExpr, parents map[ast.Node]ast.Node, fn *types.Func, root string) bool {
	// Builtins.
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
		if bi, ok := p.Info.Uses[id].(*types.Builtin); ok {
			switch bi.Name() {
			case "make":
				if !growthGuarded(p, call, parents) {
					a.report(p, call.Pos(), root, "make outside the capacity-growth guard (grow only under an if cap(...) check)")
				}
			case "new":
				a.report(p, call.Pos(), root, "new allocates")
			case "append":
				if !selfAppend(call, parents) {
					a.report(p, call.Pos(), root, "append outside the arena-growth protocol (only x = append(x, ...) reusing capacity)")
				}
			case "panic":
				return true // failure path: the boxed argument only matters when crashing
			}
			return false
		}
	}

	// Conversions: string <-> []byte/[]rune copy.
	if tv := p.Info.Types[call.Fun]; tv.IsType() && len(call.Args) == 1 {
		dst, src := tv.Type.Underlying(), p.Info.Types[call.Args[0]].Type
		if src != nil {
			toString := isStringType(dst) && isByteish(src.Underlying())
			fromString := isByteish(dst) && isStringType(src.Underlying())
			if (toString || fromString) && p.Info.Types[call.Args[0]].Value == nil {
				a.report(p, call.Pos(), root, "string conversion allocates")
			}
		}
		return false
	}

	// fmt never belongs on the hot path.
	if callee := calledFunc(p, call); callee != nil && callee.Pkg() != nil && callee.Pkg().Path() == "fmt" {
		a.report(p, call.Pos(), root, "fmt.%s allocates", callee.Name())
		return false
	}

	a.checkBoxing(p, call, root)

	if _, callee, ok := a.idx.callee(p, call); ok {
		a.walk(callee, root)
	}
	return false
}

// checkBoxing flags non-constant concrete arguments passed to interface
// parameters: the conversion forces a heap allocation at the call site.
func (a *allocWalker) checkBoxing(p *Package, call *ast.CallExpr, root string) {
	sig, ok := p.Info.Types[call.Fun].Type.Underlying().(*types.Signature)
	if !ok || call.Ellipsis != token.NoPos {
		return
	}
	params := sig.Params()
	for i, arg := range call.Args {
		var pt types.Type
		switch {
		case sig.Variadic() && i >= params.Len()-1:
			pt = params.At(params.Len() - 1).Type().(*types.Slice).Elem()
		case i < params.Len():
			pt = params.At(i).Type()
		default:
			continue
		}
		if _, ok := pt.Underlying().(*types.Interface); !ok {
			continue
		}
		tv := p.Info.Types[arg]
		if tv.Type == nil || tv.Value != nil || isNilIdent(arg) {
			continue // constants and nil don't box at run time
		}
		if _, ok := tv.Type.Underlying().(*types.Interface); ok {
			continue // interface-to-interface: no box
		}
		a.report(p, arg.Pos(), root, "argument %s boxes into an interface parameter", types.ExprString(arg))
	}
}

// checkMethodValue flags x.M used as a value: binding the receiver allocates
// a closure. Package-qualified functions and method expressions (T.M) are
// static and free.
func (a *allocWalker) checkMethodValue(p *Package, sel *ast.SelectorExpr, parents map[ast.Node]ast.Node, root string) {
	fn, ok := p.Info.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Type().(*types.Signature).Recv() == nil {
		return
	}
	parent := parents[sel]
	for {
		pe, ok := parent.(*ast.ParenExpr)
		if !ok {
			break
		}
		parent = parents[pe]
	}
	if call, ok := parent.(*ast.CallExpr); ok && ast.Unparen(call.Fun) == sel {
		return // ordinary method call
	}
	// Method expression T.M: the "receiver" is a type name.
	if id, ok := ast.Unparen(sel.X).(*ast.Ident); ok {
		if _, isType := p.Info.Uses[id].(*types.TypeName); isType {
			return
		}
	}
	a.report(p, sel.Pos(), root, "method value %s binds its receiver and allocates", types.ExprString(sel))
}

// errorResult reports whether the expression is a non-nil error return
// value.
func (a *allocWalker) errorResult(p *Package, e ast.Expr) bool {
	if isNilIdent(e) {
		return false
	}
	t := p.Info.Types[e].Type
	return t != nil && t.String() == "error"
}

// captured names the first variable a function literal captures from its
// enclosing function, or "" if it captures nothing.
func (a *allocWalker) captured(p *Package, lit *ast.FuncLit) string {
	name := ""
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		if name != "" {
			return false
		}
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		v, ok := p.Info.Uses[id].(*types.Var)
		if !ok || v.IsField() {
			return true
		}
		if v.Parent() == types.Universe || v.Parent() == p.Pkg.Scope() {
			return true // package-level state is shared, not captured
		}
		if v.Pos() < lit.Pos() || v.Pos() > lit.End() {
			name = v.Name()
		}
		return true
	})
	return name
}

// growthGuarded reports whether a make call sits under an if statement whose
// condition (or init) consults cap(): the arena/scratch amortized-growth
// protocol, where the allocation happens only when capacity has run out.
func growthGuarded(p *Package, call *ast.CallExpr, parents map[ast.Node]ast.Node) bool {
	for n := parents[call]; n != nil; n = parents[n] {
		ifs, ok := n.(*ast.IfStmt)
		if !ok {
			continue
		}
		for _, part := range []ast.Node{ifs.Init, ifs.Cond} {
			if part == nil {
				continue
			}
			found := false
			ast.Inspect(part, func(m ast.Node) bool {
				if c, ok := m.(*ast.CallExpr); ok {
					if id, ok := ast.Unparen(c.Fun).(*ast.Ident); ok {
						if bi, ok := p.Info.Uses[id].(*types.Builtin); ok && bi.Name() == "cap" {
							found = true
						}
					}
				}
				return !found
			})
			if found {
				return true
			}
		}
	}
	return false
}

// selfAppend reports whether the append call is the canonical in-place form
// x = append(x, ...), which never allocates while capacity lasts.
func selfAppend(call *ast.CallExpr, parents map[ast.Node]ast.Node) bool {
	if len(call.Args) == 0 {
		return false
	}
	as, ok := parents[call].(*ast.AssignStmt)
	if !ok || len(as.Lhs) != len(as.Rhs) {
		return false
	}
	for i, rhs := range as.Rhs {
		if ast.Unparen(rhs) == call {
			return types.ExprString(as.Lhs[i]) == types.ExprString(call.Args[0])
		}
	}
	return false
}

func isStringType(t types.Type) bool {
	b, ok := t.(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

// isByteish reports []byte or []rune.
func isByteish(t types.Type) bool {
	sl, ok := t.(*types.Slice)
	if !ok {
		return false
	}
	b, ok := sl.Elem().Underlying().(*types.Basic)
	return ok && (b.Kind() == types.Byte || b.Kind() == types.Rune ||
		b.Kind() == types.Uint8 || b.Kind() == types.Int32)
}

// parentMap records every node's parent within body.
func parentMap(body *ast.BlockStmt) map[ast.Node]ast.Node {
	parents := map[ast.Node]ast.Node{}
	var stack []ast.Node
	ast.Inspect(body, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return false
		}
		if len(stack) > 0 {
			parents[n] = stack[len(stack)-1]
		}
		stack = append(stack, n)
		return true
	})
	return parents
}
