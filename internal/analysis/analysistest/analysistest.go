// Package analysistest runs a checker over a golden-file corpus and compares
// its findings against expectation comments, x/tools-analysistest style but
// stdlib-only:
//
//	bad()        // want "regex matching the finding message"
//	alsoBad()    // want "first finding" "second finding"
//
// Every finding must be matched by a want comment on its line, and every want
// comment must be matched by a finding; either mismatch fails the test. A
// corpus with no want comments therefore doubles as a negative corpus that
// must come out clean.
package analysistest

import (
	"fmt"
	"regexp"
	"strconv"
	"strings"
	"testing"

	"ptldb/internal/analysis"
)

// expectation is one quoted regex from a want comment.
type expectation struct {
	file    string
	line    int
	re      *regexp.Regexp
	raw     string
	matched bool
}

// Run loads the single package rooted at dir and checks the findings of the
// given checkers against the corpus's want comments. Directive suppression
// (lint:ignore) is active, so corpora can also prove waivers work.
func Run(t *testing.T, dir string, checkers ...analysis.Checker) {
	t.Helper()
	loader, err := analysis.NewLoader(dir)
	if err != nil {
		t.Fatalf("analysistest: %v", err)
	}
	pkgs, err := loader.Load(dir, ".")
	if err != nil {
		t.Fatalf("analysistest: loading %s: %v", dir, err)
	}
	if len(pkgs) != 1 {
		t.Fatalf("analysistest: %s resolved to %d packages, want 1", dir, len(pkgs))
	}
	p := pkgs[0]

	wants, err := parseWants(p)
	if err != nil {
		t.Fatalf("analysistest: %v", err)
	}

	findings := analysis.Run(pkgs, checkers)
	for _, f := range findings {
		if !claim(wants, f) {
			t.Errorf("unexpected finding: %s", f)
		}
	}
	for _, w := range wants {
		if !w.matched {
			t.Errorf("%s:%d: no finding matched want %s", w.file, w.line, w.raw)
		}
	}
}

// claim marks the first unmatched expectation on the finding's line whose
// regex matches the message, and reports whether one was found.
func claim(wants []*expectation, f analysis.Finding) bool {
	for _, w := range wants {
		if w.matched || w.file != f.Pos.Filename || w.line != f.Pos.Line {
			continue
		}
		if w.re.MatchString(f.Message) {
			w.matched = true
			return true
		}
	}
	return false
}

// parseWants extracts the want expectations from the package's comments.
func parseWants(p *analysis.Package) ([]*expectation, error) {
	var out []*expectation
	for _, file := range p.Files {
		for _, cg := range file.Comments {
			for _, c := range cg.List {
				text := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
				rest, ok := strings.CutPrefix(text, "want ")
				if !ok {
					continue
				}
				pos := p.Fset.Position(c.Pos())
				raws, err := quotedStrings(rest)
				if err != nil {
					return nil, fmt.Errorf("%s:%d: bad want comment: %v", pos.Filename, pos.Line, err)
				}
				if len(raws) == 0 {
					return nil, fmt.Errorf("%s:%d: want comment with no quoted regex", pos.Filename, pos.Line)
				}
				for _, raw := range raws {
					re, err := regexp.Compile(raw)
					if err != nil {
						return nil, fmt.Errorf("%s:%d: bad want regex %q: %v", pos.Filename, pos.Line, raw, err)
					}
					out = append(out, &expectation{
						file: pos.Filename,
						line: pos.Line,
						re:   re,
						raw:  strconv.Quote(raw),
					})
				}
			}
		}
	}
	return out, nil
}

// quotedStrings parses a sequence of space-separated Go string literals
// (double-quoted or backquoted).
func quotedStrings(s string) ([]string, error) {
	var out []string
	for {
		s = strings.TrimSpace(s)
		if s == "" {
			return out, nil
		}
		switch s[0] {
		case '"':
			end := -1
			for i := 1; i < len(s); i++ {
				if s[i] == '\\' {
					i++
					continue
				}
				if s[i] == '"' {
					end = i
					break
				}
			}
			if end < 0 {
				return nil, fmt.Errorf("unterminated string in %q", s)
			}
			unq, err := strconv.Unquote(s[:end+1])
			if err != nil {
				return nil, err
			}
			out = append(out, unq)
			s = s[end+1:]
		case '`':
			end := strings.IndexByte(s[1:], '`')
			if end < 0 {
				return nil, fmt.Errorf("unterminated raw string in %q", s)
			}
			out = append(out, s[1:end+1])
			s = s[end+2:]
		default:
			return nil, fmt.Errorf("expected quoted regex at %q", s)
		}
	}
}
