// Package analysis is PTLDB's project-specific static-analysis suite. It
// type-checks the module from source with nothing but the standard library
// (go/parser + go/types + the source importer) and runs checkers that lock in
// the invariants the hot paths depend on but the type system cannot see:
//
//   - sqlcheck: every string constant reaching Prepare/CachedPrepare/Query/
//     Exec is parsed at lint time with internal/sqldb/sql, and statements
//     reaching core's prepared() helper must additionally compile with
//     exec.Fuse — SQL drift in the paper's Codes 1–4 becomes a lint failure
//     instead of a runtime ErrNotFused fallback.
//   - lockcheck: no device I/O or blocking channel operations while a
//     buffer-pool shard mutex (a mutex field annotated "lockcheck:shard") is
//     held, and every Lock has an Unlock on all return paths.
//   - atomiccheck: a field accessed through sync/atomic anywhere must be
//     accessed atomically everywhere.
//   - arenacheck: slices carved out of exec.RowScratch's append-only Arena
//     must not be stored in struct fields, returned, or sent on channels.
//   - errcheck: no silently discarded error results in internal/sqldb and
//     internal/sqldb/storage.
//
// Checkers identify project constructs by convention (method names, the
// Arena field name, the lockcheck:shard field annotation) rather than by
// type identity, so each checker is exercised by a small self-contained
// golden-file corpus under testdata/ (see the analysistest package).
//
// A finding can be waived with a directive comment on the offending line or
// the line directly above it:
//
//	//lint:ignore <checker> <reason>
//
// The reason is mandatory: a waiver without a written justification is
// itself reported.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"sort"
	"strings"
)

// Finding is one checker diagnostic at a source position.
type Finding struct {
	Pos     token.Position `json:"pos"`
	Checker string         `json:"checker"`
	Message string         `json:"message"`
}

// String formats the finding like a compiler diagnostic.
func (f Finding) String() string {
	return fmt.Sprintf("%s: %s: %s", f.Pos, f.Checker, f.Message)
}

// Checker is one analysis pass over a type-checked package.
type Checker interface {
	Name() string
	Check(p *Package) []Finding
}

// Checkers returns the full PTLDB suite with its production scoping:
// errcheck is limited to the storage engine, where a swallowed error means
// silent data loss; every other checker runs module-wide.
func Checkers() []Checker {
	return []Checker{
		NewSQLCheck(),
		NewLockCheck(),
		NewAtomicCheck(),
		NewArenaCheck(),
		NewErrCheck("ptldb/internal/sqldb"),
	}
}

// CheckerNames returns the names of the default suite, for -checkers help.
func CheckerNames() []string {
	var names []string
	for _, c := range Checkers() {
		names = append(names, c.Name())
	}
	return names
}

// Run executes the checkers over the packages, drops findings waived by
// lint:ignore directives, and returns the rest sorted by position. Malformed
// directives (no checker name or no reason) are themselves findings.
func Run(pkgs []*Package, checkers []Checker) []Finding {
	var out []Finding
	for _, p := range pkgs {
		dirs, bad := p.directives()
		out = append(out, bad...)
		for _, c := range checkers {
			for _, f := range c.Check(p) {
				if dirs.waived(f) {
					continue
				}
				out = append(out, f)
			}
		}
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Checker < b.Checker
	})
	return out
}

// --- lint:ignore directives --------------------------------------------------

// directiveKey locates one waiver: a checker name on one line of one file.
type directiveKey struct {
	file    string
	line    int
	checker string
}

type directiveSet map[directiveKey]bool

// waived reports whether f is covered by a directive on its line or the line
// directly above it.
func (d directiveSet) waived(f Finding) bool {
	for _, line := range []int{f.Pos.Line, f.Pos.Line - 1} {
		if d[directiveKey{f.Pos.Filename, line, f.Checker}] {
			return true
		}
	}
	return false
}

const directivePrefix = "lint:ignore"

// directives scans the package's comments for lint:ignore waivers. A
// directive must name a checker and give a reason; anything else is reported.
func (p *Package) directives() (directiveSet, []Finding) {
	set := directiveSet{}
	var bad []Finding
	for _, file := range p.Files {
		for _, cg := range file.Comments {
			for _, c := range cg.List {
				text := strings.TrimPrefix(c.Text, "//")
				text = strings.TrimPrefix(text, "/*")
				text = strings.TrimSpace(strings.TrimSuffix(text, "*/"))
				if !strings.HasPrefix(text, directivePrefix) {
					continue
				}
				pos := p.Fset.Position(c.Pos())
				fields := strings.Fields(strings.TrimPrefix(text, directivePrefix))
				if len(fields) < 2 {
					bad = append(bad, Finding{
						Pos:     pos,
						Checker: "directive",
						Message: "malformed lint:ignore: want \"lint:ignore <checker> <reason>\"",
					})
					continue
				}
				set[directiveKey{pos.Filename, pos.Line, fields[0]}] = true
			}
		}
	}
	return set, bad
}

// --- small shared AST helpers ------------------------------------------------

// calleeName returns the bare name a call is made through: the method name
// for x.M(...), the function name for F(...), "" otherwise.
func calleeName(call *ast.CallExpr) string {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		return fun.Name
	case *ast.SelectorExpr:
		return fun.Sel.Name
	}
	return ""
}
