// Package analysis is PTLDB's project-specific static-analysis suite. It
// type-checks the module from source with nothing but the standard library
// (go/parser + go/types + the source importer) and runs checkers that lock in
// the invariants the hot paths depend on but the type system cannot see:
//
//   - sqlcheck: every string constant reaching Prepare/CachedPrepare/Query/
//     Exec is parsed at lint time with internal/sqldb/sql, and statements
//     reaching core's prepared() helper must additionally compile with
//     exec.Fuse — SQL drift in the paper's Codes 1–4 becomes a lint failure
//     instead of a runtime ErrNotFused fallback.
//   - lockcheck: no device I/O or blocking channel operations while a
//     buffer-pool shard mutex (a mutex field annotated "lockcheck:shard") is
//     held, and every Lock has an Unlock on all return paths.
//   - lockordercheck: a whole-module lock-acquisition graph over all
//     annotated mutexes ("lockcheck:shard") and latches ("lockcheck:latch"),
//     built on the CFG engine in cfg.go — cycles, two shard mutexes held at
//     once, and undocumented or violated "level=N" ordering are findings.
//   - atomiccheck: a field accessed through sync/atomic anywhere must be
//     accessed atomically everywhere.
//   - arenacheck: slices carved out of exec.RowScratch's append-only Arena
//     must not be stored in struct fields, returned, or sent on channels.
//   - allocheck: functions reachable from "// hotpath" roots must be
//     statically allocation-free — no heap literals, closures, fmt, string
//     building or interface boxing; append and make only through the arena
//     capacity-growth protocol ("hotpath:cold" exempts a cold statement or
//     callee).
//   - errcheck: no silently discarded error results in internal/sqldb,
//     internal/obs, and the cmd/ binaries.
//
// Checkers identify project constructs by convention (method names, the
// Arena field name, the lockcheck:shard field annotation) rather than by
// type identity, so each checker is exercised by a small self-contained
// golden-file corpus under testdata/ (see the analysistest package).
//
// A finding can be waived with a directive comment on the offending line or
// the line directly above it:
//
//	//lint:ignore <checker> <reason>
//
// The reason is mandatory: a waiver without a written justification is
// itself reported, and so is a stale waiver — one that no longer suppresses
// any finding of a checker that ran.
package analysis

import (
	"encoding/json"
	"fmt"
	"go/ast"
	"go/token"
	"sort"
	"strings"
)

// Finding is one checker diagnostic at a source position.
type Finding struct {
	Pos     token.Position
	Checker string
	Message string
}

// String formats the finding like a compiler diagnostic.
func (f Finding) String() string {
	return fmt.Sprintf("%s: %s: %s", f.Pos, f.Checker, f.Message)
}

// MarshalJSON emits the flat, stable schema CI consumers parse (documented
// in README): one object per finding with exactly the keys file, line, col,
// checker, message — in that order.
func (f Finding) MarshalJSON() ([]byte, error) {
	return json.Marshal(struct {
		File    string `json:"file"`
		Line    int    `json:"line"`
		Col     int    `json:"col"`
		Checker string `json:"checker"`
		Message string `json:"message"`
	}{f.Pos.Filename, f.Pos.Line, f.Pos.Column, f.Checker, f.Message})
}

// Checker is one analysis pass; every checker also implements exactly one of
// PackageChecker or ModuleChecker, which fixes its granularity.
type Checker interface {
	Name() string
}

// PackageChecker analyzes one type-checked package at a time.
type PackageChecker interface {
	Checker
	Check(p *Package) []Finding
}

// ModuleChecker analyzes all loaded packages at once — for facts that only
// exist whole-module, like the lock-acquisition graph or cross-package
// hot-path reachability.
type ModuleChecker interface {
	Checker
	CheckModule(pkgs []*Package) []Finding
}

// Checkers returns the full PTLDB suite with its production scoping:
// errcheck is limited to the storage engine (where a swallowed error means
// silent data loss), the observability layer, and the CLI binaries; every
// other checker runs module-wide.
func Checkers() []Checker {
	return []Checker{
		NewSQLCheck(),
		NewLockCheck(),
		NewLockOrderCheck(),
		NewAtomicCheck(),
		NewArenaCheck(),
		NewAllocCheck(),
		NewErrCheck("ptldb/internal/sqldb", "ptldb/internal/obs", "ptldb/internal/serve", "ptldb/internal/tenant", "ptldb/cmd"),
	}
}

// CheckerNames returns the names of the default suite, for -checkers help.
func CheckerNames() []string {
	var names []string
	for _, c := range Checkers() {
		names = append(names, c.Name())
	}
	return names
}

// Run executes the checkers over the packages, drops findings waived by
// lint:ignore directives, and returns the rest sorted by position. Malformed
// directives (no checker name or no reason) are themselves findings, and so
// are stale ones: a waiver naming a checker that ran but suppressed nothing
// has outlived its bug and must be deleted.
func Run(pkgs []*Package, checkers []Checker) []Finding {
	dirs, out := collectDirectives(pkgs)
	ran := map[string]bool{}
	for _, c := range checkers {
		ran[c.Name()] = true
		var findings []Finding
		switch ck := c.(type) {
		case ModuleChecker:
			findings = ck.CheckModule(pkgs)
		case PackageChecker:
			for _, p := range pkgs {
				findings = append(findings, ck.Check(p)...)
			}
		}
		for _, f := range findings {
			if dirs.waive(f) {
				continue
			}
			out = append(out, f)
		}
	}
	out = append(out, dirs.stale(ran)...)
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Checker < b.Checker
	})
	return out
}

// --- lint:ignore directives --------------------------------------------------

// directiveKey locates one waiver: a checker name on one line of one file.
type directiveKey struct {
	file    string
	line    int
	checker string
}

// directiveState tracks whether a waiver earned its keep during this run.
type directiveState struct {
	pos  token.Position
	used bool
}

type directiveSet map[directiveKey]*directiveState

// waive reports whether f is covered by a directive on its line or the line
// directly above it, marking the directive live.
func (d directiveSet) waive(f Finding) bool {
	for _, line := range []int{f.Pos.Line, f.Pos.Line - 1} {
		if st := d[directiveKey{f.Pos.Filename, line, f.Checker}]; st != nil {
			st.used = true
			return true
		}
	}
	return false
}

// stale reports every directive that suppressed nothing, scoped to checkers
// that actually ran — a waiver for a skipped checker can't prove itself.
func (d directiveSet) stale(ran map[string]bool) []Finding {
	var out []Finding
	for key, st := range d {
		if st.used || !ran[key.checker] {
			continue
		}
		out = append(out, Finding{
			Pos:     st.pos,
			Checker: "directive",
			Message: fmt.Sprintf("stale lint:ignore: no %s finding on this or the next line; delete the waiver", key.checker),
		})
	}
	return out
}

const directivePrefix = "lint:ignore"

// collectDirectives scans every package's comments for lint:ignore waivers.
// A directive must name a checker and give a reason; anything else is
// returned as a finding.
func collectDirectives(pkgs []*Package) (directiveSet, []Finding) {
	set := directiveSet{}
	var bad []Finding
	for _, p := range pkgs {
		for _, file := range p.Files {
			for _, cg := range file.Comments {
				for _, c := range cg.List {
					text := strings.TrimPrefix(c.Text, "//")
					text = strings.TrimPrefix(text, "/*")
					text = strings.TrimSpace(strings.TrimSuffix(text, "*/"))
					if !strings.HasPrefix(text, directivePrefix) {
						continue
					}
					pos := p.Fset.Position(c.Pos())
					fields := strings.Fields(strings.TrimPrefix(text, directivePrefix))
					if len(fields) < 2 {
						bad = append(bad, Finding{
							Pos:     pos,
							Checker: "directive",
							Message: "malformed lint:ignore: want \"lint:ignore <checker> <reason>\"",
						})
						continue
					}
					set[directiveKey{pos.Filename, pos.Line, fields[0]}] = &directiveState{pos: pos}
				}
			}
		}
	}
	return set, bad
}

// --- small shared AST helpers ------------------------------------------------

// calleeName returns the bare name a call is made through: the method name
// for x.M(...), the function name for F(...), "" otherwise.
func calleeName(call *ast.CallExpr) string {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		return fun.Name
	case *ast.SelectorExpr:
		return fun.Sel.Name
	}
	return ""
}
