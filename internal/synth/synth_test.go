package synth

import (
	"math"
	"testing"

	"ptldb/internal/timetable"
)

func TestProfileByName(t *testing.T) {
	p, err := ProfileByName("Madrid")
	if err != nil {
		t.Fatal(err)
	}
	if p.Stops != 4000 || p.AvgDegree() != 478 {
		t.Errorf("Madrid profile = %+v (avg degree %d)", p, p.AvgDegree())
	}
	if _, err := ProfileByName("Atlantis"); err == nil {
		t.Error("ProfileByName(Atlantis) succeeded")
	}
}

func TestGenerateHitsTargets(t *testing.T) {
	p, _ := ProfileByName("Austin")
	tt := Generate(p, Options{Scale: 0.05, Seed: 1})
	wantStops := int(math.Round(float64(p.Stops) * 0.05))
	if got := tt.NumStops(); got != wantStops {
		t.Errorf("NumStops = %d, want %d", got, wantStops)
	}
	wantConns := int(math.Round(float64(p.Connections) * 0.05))
	if got := tt.NumConnections(); got != wantConns {
		t.Errorf("NumConnections = %d, want %d", got, wantConns)
	}
}

func TestGenerateDeterministic(t *testing.T) {
	p, _ := ProfileByName("Denver")
	a := Generate(p, Options{Scale: 0.02, Seed: 9})
	b := Generate(p, Options{Scale: 0.02, Seed: 9})
	if a.NumConnections() != b.NumConnections() {
		t.Fatal("different sizes for same seed")
	}
	for i, c := range a.Connections() {
		if c != b.Connection(int32(i)) {
			t.Fatalf("connection %d differs for same seed", i)
		}
	}
	c := Generate(p, Options{Scale: 0.02, Seed: 10})
	same := a.NumConnections() == c.NumConnections()
	if same {
		for i := range a.Connections() {
			if a.Connection(int32(i)) != c.Connection(int32(i)) {
				same = false
				break
			}
		}
	}
	if same {
		t.Error("identical timetables for different seeds")
	}
}

// TestGenerateStructure checks the qualitative properties the evaluation
// depends on: a realistic service span, positive durations (enforced by the
// builder), degree skew (hubs see far more traffic than the median stop), and
// full connectivity of most of the network at the start of day.
func TestGenerateStructure(t *testing.T) {
	p, _ := ProfileByName("Berlin")
	tt := Generate(p, Options{Scale: 0.02, Seed: 3})

	if tt.MinTime() < 4*3600 || tt.MinTime() > 7*3600 {
		t.Errorf("first departure %v outside expected morning window", tt.MinTime())
	}
	if tt.MaxTime() < 20*3600 {
		t.Errorf("last arrival %v suspiciously early", tt.MaxTime())
	}

	degs := make([]int, tt.NumStops())
	for v := range degs {
		degs[v] = len(tt.Outgoing(timetable.StopID(v))) + len(tt.Incoming(timetable.StopID(v)))
	}
	maxDeg, sum := 0, 0
	for _, d := range degs {
		sum += d
		if d > maxDeg {
			maxDeg = d
		}
	}
	avg := sum / len(degs)
	if maxDeg < 4*avg {
		t.Errorf("degree skew too flat: max %d vs avg %d", maxDeg, avg)
	}

	// Reachability sweep from a busy stop.
	busy := timetable.StopID(0)
	for v := range degs {
		if degs[v] > degs[busy] {
			busy = timetable.StopID(v)
		}
	}
	arr := earliestAll(tt, busy, tt.MinTime())
	reached := 0
	for _, a := range arr {
		if a < timetable.Infinity {
			reached++
		}
	}
	if float64(reached) < 0.5*float64(tt.NumStops()) {
		t.Errorf("only %d/%d stops reachable from the busiest stop", reached, tt.NumStops())
	}
}

// earliestAll is a local copy of the CSA forward scan to avoid an import
// cycle in test-only code.
func earliestAll(tt *timetable.Timetable, s timetable.StopID, t0 timetable.Time) []timetable.Time {
	arr := make([]timetable.Time, tt.NumStops())
	for i := range arr {
		arr[i] = timetable.Infinity
	}
	arr[s] = t0
	for _, c := range tt.Connections() {
		if c.Dep >= arr[c.From] && c.Arr < arr[c.To] {
			arr[c.To] = c.Arr
		}
	}
	return arr
}

func TestGenerateTinyScaleClampsStops(t *testing.T) {
	p, _ := ProfileByName("Austin")
	tt := Generate(p, Options{Scale: 0.001, Seed: 1})
	if tt.NumStops() < 10 {
		t.Errorf("tiny scale produced %d stops", tt.NumStops())
	}
	if tt.NumConnections() == 0 {
		t.Error("tiny scale produced no connections")
	}
}

func TestAllProfilesPresent(t *testing.T) {
	if len(Profiles) != 11 {
		t.Fatalf("expected the paper's 11 datasets, have %d", len(Profiles))
	}
	seen := map[string]bool{}
	for _, p := range Profiles {
		if seen[p.Name] {
			t.Errorf("duplicate profile %q", p.Name)
		}
		seen[p.Name] = true
		if p.Stops <= 0 || p.Connections <= 0 {
			t.Errorf("profile %q has empty targets", p.Name)
		}
	}
}
