// Package synth generates synthetic schedule-based transit networks.
//
// The PTLDB evaluation uses eleven real GTFS feeds (paper Table 7) that are
// not redistributable; this package substitutes parametric city models that
// match the published statistics of each dataset — number of stops, number
// of elementary connections and average degree — and the qualitative
// structure hub labeling relies on: a minority of central interchange stops
// traversed by many lines, line-shaped trips with regular headways, and a
// service day spanning roughly 04:00–26:00.
//
// Generation is fully deterministic for a given (Profile, Scale, Seed).
package synth

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"ptldb/internal/timetable"
)

// Profile describes one synthetic city.
type Profile struct {
	// Name of the modelled dataset (paper Table 7).
	Name string
	// Stops is the target number of stops |V|.
	Stops int
	// Connections is the target number of elementary connections |E|.
	Connections int
	// PaperTuplesPerStop records the |HL|/|V| the paper reports for the real
	// dataset (informational; used in EXPERIMENTS.md comparisons).
	PaperTuplesPerStop int
	// PaperPreprocSeconds records the TTL preprocessing time the paper
	// reports (informational).
	PaperPreprocSeconds float64
}

// AvgDegree returns the target average degree |E|/|V|.
func (p Profile) AvgDegree() int { return p.Connections / p.Stops }

// Profiles lists the eleven datasets of the paper's Table 7.
var Profiles = []Profile{
	{Name: "Austin", Stops: 2000, Connections: 317000, PaperTuplesPerStop: 1600, PaperPreprocSeconds: 11.3},
	{Name: "Berlin", Stops: 12000, Connections: 2081000, PaperTuplesPerStop: 1734, PaperPreprocSeconds: 184.7},
	{Name: "Budapest", Stops: 5000, Connections: 1446000, PaperTuplesPerStop: 2486, PaperPreprocSeconds: 54.4},
	{Name: "Denver", Stops: 10000, Connections: 711000, PaperTuplesPerStop: 1190, PaperPreprocSeconds: 27.3},
	{Name: "Houston", Stops: 10000, Connections: 1113000, PaperTuplesPerStop: 2196, PaperPreprocSeconds: 72.6},
	{Name: "Los Angeles", Stops: 15000, Connections: 1928000, PaperTuplesPerStop: 2572, PaperPreprocSeconds: 194.5},
	{Name: "Madrid", Stops: 4000, Connections: 1913000, PaperTuplesPerStop: 7230, PaperPreprocSeconds: 338.5},
	{Name: "Roma", Stops: 9000, Connections: 2281000, PaperTuplesPerStop: 4370, PaperPreprocSeconds: 353.6},
	{Name: "Salt Lake City", Stops: 6000, Connections: 330000, PaperTuplesPerStop: 630, PaperPreprocSeconds: 4.5},
	{Name: "Sweden", Stops: 51000, Connections: 4072000, PaperTuplesPerStop: 775, PaperPreprocSeconds: 179.1},
	{Name: "Toronto", Stops: 10000, Connections: 3300000, PaperTuplesPerStop: 2987, PaperPreprocSeconds: 262.1},
}

// ProfileByName returns the profile with the given name (case-sensitive).
func ProfileByName(name string) (Profile, error) {
	for _, p := range Profiles {
		if p.Name == name {
			return p, nil
		}
	}
	return Profile{}, fmt.Errorf("synth: unknown profile %q", name)
}

// Options tunes generation.
type Options struct {
	// Scale multiplies both the stop and connection targets; 1.0 generates
	// the full-size dataset, 0.1 a ten-times smaller one with the same
	// average degree. Values <= 0 default to 1.0.
	Scale float64
	// Seed selects the deterministic random stream.
	Seed int64

	// MinLineStops/MaxLineStops bound the number of stops per line
	// (defaults 8/28).
	MinLineStops, MaxLineStops int
	// DayStart/DayEnd bound first and last departures (defaults 4h/26h).
	DayStart, DayEnd timetable.Time
}

func (o *Options) defaults() {
	if o.Scale <= 0 {
		o.Scale = 1.0
	}
	if o.MinLineStops == 0 {
		o.MinLineStops = 8
	}
	if o.MaxLineStops == 0 {
		o.MaxLineStops = 28
	}
	if o.DayStart == 0 {
		o.DayStart = 4 * 3600
	}
	if o.DayEnd == 0 {
		o.DayEnd = 26 * 3600
	}
}

// Generate builds the synthetic timetable for a profile.
func Generate(p Profile, opt Options) *timetable.Timetable {
	opt.defaults()
	nStops := int(math.Round(float64(p.Stops) * opt.Scale))
	if nStops < opt.MaxLineStops+2 {
		nStops = opt.MaxLineStops + 2
	}
	targetConns := int(math.Round(float64(p.Connections) * opt.Scale))
	rng := rand.New(rand.NewSource(opt.Seed ^ int64(len(p.Name))<<32 ^ int64(nStops)))

	g := newGeometry(rng, nStops)
	var b timetable.Builder
	for i := 0; i < nStops; i++ {
		b.AddStop(fmt.Sprintf("%s-%04d", p.Name, i), g.pts[i].y, g.pts[i].x)
	}

	// Phase 1: plan routes until every stop is served. Each route starts at
	// a yet-unserved stop, so coverage is guaranteed regardless of scale.
	var routes [][]timetable.StopID
	served := make([]bool, nStops)
	nServed, totalSegs := 0, 0
	for next := 0; nServed < nStops; {
		for next < nStops && served[next] {
			next++
		}
		route := g.route(rng, timetable.StopID(next),
			opt.MinLineStops+rng.Intn(opt.MaxLineStops-opt.MinLineStops+1))
		if len(route) < 2 {
			// Isolated pocket in the spatial index: mark the stop served and
			// let a later route pass nearby.
			served[next] = true
			nServed++
			continue
		}
		routes = append(routes, route)
		totalSegs += 2 * (len(route) - 1) // both directions
		for _, s := range route {
			if !served[s] {
				served[s] = true
				nServed++
			}
		}
	}

	// Phase 2: derive a base headway so that running every route all day in
	// both directions yields the target connection count, then emit trips.
	window := float64(opt.DayEnd - opt.DayStart)
	sweeps := float64(targetConns) / float64(totalSegs) // trips per route per day
	baseHeadway := window / math.Max(1, sweeps)

	trip := timetable.TripID(0)
	conns := 0
	for r := 0; conns < targetConns; r = (r + 1) % len(routes) {
		stops := routes[r]
		// Inter-stop running times: 60–240 s, fixed per line.
		seg := make([]timetable.Time, len(stops)-1)
		for i := range seg {
			seg[i] = timetable.Time(60 + rng.Intn(180))
		}
		headway := timetable.Time(baseHeadway * (0.7 + 0.6*rng.Float64()))
		if headway < 120 {
			headway = 120
		}
		first := opt.DayStart + timetable.Time(rng.Intn(3600))
		// Lines run in both directions, like real transit lines; without the
		// reverse runs large parts of the network would be one-way traps.
		reversed := make([]timetable.StopID, len(stops))
		for i, s := range stops {
			reversed[len(stops)-1-i] = s
		}
		for t0 := first; t0 <= opt.DayEnd && conns < targetConns; t0 += headway {
			for _, dir := range [2][]timetable.StopID{stops, reversed} {
				t := t0
				for i := 0; i+1 < len(dir) && conns < targetConns; i++ {
					b.AddConnection(dir[i], dir[i+1], t, t+seg[i], trip)
					t += seg[i] + timetable.Time(10+rng.Intn(30)) // dwell
					conns++
				}
				trip++
			}
		}
	}
	return b.MustBuild()
}

// point is a stop location in an abstract unit square.
type point struct{ x, y float64 }

// geometry places stops and answers nearest-neighbour-ish routing queries
// through a uniform grid index. A fraction of the stops ("hubs") cluster
// around the city centre so that radial lines share interchanges, giving the
// degree skew hub labeling exploits.
type geometry struct {
	pts  []point
	hubs []timetable.StopID
	grid map[[2]int][]timetable.StopID
	cell float64
}

func newGeometry(rng *rand.Rand, n int) *geometry {
	g := &geometry{
		pts:  make([]point, n),
		cell: 1.0 / math.Max(4, math.Sqrt(float64(n)/6)),
		grid: make(map[[2]int][]timetable.StopID),
	}
	nHubs := n / 50
	if nHubs < 3 {
		nHubs = 3
	}
	for i := 0; i < n; i++ {
		var pt point
		if i < nHubs {
			// Hubs: gaussian cluster around the centre.
			pt = point{
				x: clamp01(0.5 + rng.NormFloat64()*0.12),
				y: clamp01(0.5 + rng.NormFloat64()*0.12),
			}
			g.hubs = append(g.hubs, timetable.StopID(i))
		} else {
			pt = point{x: rng.Float64(), y: rng.Float64()}
		}
		g.pts[i] = pt
		key := g.key(pt)
		g.grid[key] = append(g.grid[key], timetable.StopID(i))
	}
	return g
}

func clamp01(v float64) float64 { return math.Min(1, math.Max(0, v)) }

func (g *geometry) key(p point) [2]int {
	return [2]int{int(p.x / g.cell), int(p.y / g.cell)}
}

// near returns up to k stops close to p, excluding those in skip, searching
// outward ring by ring.
func (g *geometry) near(p point, k int, skip map[timetable.StopID]bool) []timetable.StopID {
	center := g.key(p)
	var out []timetable.StopID
	for r := 0; r < 8 && len(out) < k; r++ {
		for dx := -r; dx <= r; dx++ {
			for dy := -r; dy <= r; dy++ {
				if maxAbs(dx, dy) != r {
					continue // ring boundary only
				}
				for _, id := range g.grid[[2]int{center[0] + dx, center[1] + dy}] {
					if !skip[id] {
						out = append(out, id)
					}
				}
			}
		}
	}
	sort.Slice(out, func(a, b int) bool { return g.dist2(p, out[a]) < g.dist2(p, out[b]) })
	if len(out) > k {
		out = out[:k]
	}
	return out
}

func maxAbs(a, b int) int {
	if a < 0 {
		a = -a
	}
	if b < 0 {
		b = -b
	}
	if a > b {
		return a
	}
	return b
}

func (g *geometry) dist2(p point, id timetable.StopID) float64 {
	q := g.pts[id]
	dx, dy := p.x-q.x, p.y-q.y
	return dx*dx + dy*dy
}

// route builds one line of n stops: it starts at the given stop, walks toward
// a random hub, and after passing it continues toward a random peripheral
// point, visiting near-lying stops along the way.
func (g *geometry) route(rng *rand.Rand, start timetable.StopID, n int) []timetable.StopID {
	visited := map[timetable.StopID]bool{start: true}
	seq := []timetable.StopID{start}
	cur := g.pts[start]
	target := g.pts[g.hubs[rng.Intn(len(g.hubs))]]
	for len(seq) < n {
		// Candidate next stops near the current position; among them pick
		// the one making most progress toward the target.
		cand := g.near(cur, 6, visited)
		if len(cand) == 0 {
			break
		}
		best, bestD := cand[0], math.Inf(1)
		for _, c := range cand {
			d := g.dist2(target, c)
			if d < bestD {
				best, bestD = c, d
			}
		}
		seq = append(seq, best)
		visited[best] = true
		cur = g.pts[best]
		// Arrived near the target: head for the periphery next.
		if bestD < g.cell*g.cell {
			target = point{x: rng.Float64(), y: rng.Float64()}
		}
	}
	return seq
}
