package csa

import (
	"sort"

	"ptldb/internal/timetable"
)

// EarliestArrivalJourney returns the connection sequence of a journey from s
// to g departing no sooner than t and arriving at EA(s, g, t). The second
// result is false when g is unreachable. For s == g it returns an empty
// journey and true.
//
// PTLDB itself answers timestamps only — the paper notes that full paths
// would be stored expanded in the database — so path reconstruction runs the
// Connection Scan with parent pointers; the arrival time always matches the
// label-based answer (the labels are exact).
func EarliestArrivalJourney(tt *timetable.Timetable, s, g timetable.StopID, t timetable.Time) ([]timetable.Connection, bool) {
	if s == g {
		return nil, true
	}
	n := tt.NumStops()
	arr := make([]timetable.Time, n)
	parent := make([]int32, n)
	for i := range arr {
		arr[i] = timetable.Infinity
		parent[i] = -1
	}
	arr[s] = t
	conns := tt.Connections()
	i := sort.Search(len(conns), func(i int) bool { return conns[i].Dep >= t })
	for ; i < len(conns); i++ {
		c := conns[i]
		if c.Dep >= arr[c.From] && c.Arr < arr[c.To] {
			arr[c.To] = c.Arr
			parent[c.To] = int32(i)
		}
	}
	if arr[g] == timetable.Infinity {
		return nil, false
	}
	var rev []timetable.Connection
	for at := g; at != s; {
		c := tt.Connection(parent[at])
		rev = append(rev, c)
		at = c.From
	}
	out := make([]timetable.Connection, len(rev))
	for i, c := range rev {
		out[len(rev)-1-i] = c
	}
	return out, true
}

// LatestDepartureJourney returns the connection sequence of a journey from s
// to g arriving no later than t and departing at LD(s, g, t). The second
// result is false when no such journey exists.
func LatestDepartureJourney(tt *timetable.Timetable, s, g timetable.StopID, t timetable.Time) ([]timetable.Connection, bool) {
	if s == g {
		return nil, true
	}
	n := tt.NumStops()
	dep := make([]timetable.Time, n)
	parent := make([]int32, n)
	for i := range dep {
		dep[i] = timetable.NegInfinity
		parent[i] = -1
	}
	dep[g] = t
	conns := tt.Connections()
	idx := make([]int32, 0, len(conns))
	for i := range conns {
		if conns[i].Arr <= t {
			idx = append(idx, int32(i))
		}
	}
	sort.Slice(idx, func(a, b int) bool { return conns[idx[a]].Arr > conns[idx[b]].Arr })
	for _, ci := range idx {
		c := conns[ci]
		if c.Arr <= dep[c.To] && c.Dep > dep[c.From] {
			dep[c.From] = c.Dep
			parent[c.From] = ci
		}
	}
	if dep[s] == timetable.NegInfinity {
		return nil, false
	}
	var out []timetable.Connection
	for at := s; at != g; {
		c := tt.Connection(parent[at])
		out = append(out, c)
		at = c.To
	}
	return out, true
}

// Transfers counts the vehicle changes along a journey.
func Transfers(journey []timetable.Connection) int {
	n := 0
	for i := 1; i < len(journey); i++ {
		if journey[i].Trip != journey[i-1].Trip {
			n++
		}
	}
	return n
}
