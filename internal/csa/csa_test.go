package csa

import (
	"math/rand"
	"testing"

	"ptldb/internal/timetable"
)

// randomTimetable builds a random strict-duration timetable for property
// tests.
func randomTimetable(rng *rand.Rand, stops, conns int) *timetable.Timetable {
	var b timetable.Builder
	b.AddStops(stops)
	for i := 0; i < conns; i++ {
		from := timetable.StopID(rng.Intn(stops))
		to := timetable.StopID(rng.Intn(stops))
		if from == to {
			to = (to + 1) % timetable.StopID(stops)
		}
		dep := timetable.Time(rng.Intn(86400))
		dur := timetable.Time(1 + rng.Intn(5400))
		b.AddConnection(from, to, dep, dep+dur, timetable.TripID(rng.Intn(200)))
	}
	return b.MustBuild()
}

// bruteEA computes earliest arrivals by relaxing every connection until a
// fixpoint, independent of scan order — an independent check on the
// single-pass CSA.
func bruteEA(tt *timetable.Timetable, s timetable.StopID, t timetable.Time) []timetable.Time {
	arr := make([]timetable.Time, tt.NumStops())
	for i := range arr {
		arr[i] = timetable.Infinity
	}
	arr[s] = t
	for changed := true; changed; {
		changed = false
		for _, c := range tt.Connections() {
			if c.Dep >= arr[c.From] && c.Arr < arr[c.To] {
				arr[c.To] = c.Arr
				changed = true
			}
		}
	}
	return arr
}

// bruteLD is the analogous fixpoint computation for latest departures toward
// target g.
func bruteLD(tt *timetable.Timetable, g timetable.StopID, t timetable.Time) []timetable.Time {
	dep := make([]timetable.Time, tt.NumStops())
	for i := range dep {
		dep[i] = timetable.NegInfinity
	}
	dep[g] = t
	for changed := true; changed; {
		changed = false
		for _, c := range tt.Connections() {
			if c.Arr <= dep[c.To] && c.Dep > dep[c.From] {
				dep[c.From] = c.Dep
				changed = true
			}
		}
	}
	return dep
}

func TestEarliestArrivalPaperExample(t *testing.T) {
	tt := timetable.PaperExample()
	cases := []struct {
		s, g timetable.StopID
		t    timetable.Time
		want timetable.Time
	}{
		{5, 6, 28800, 43200}, // trip 1 end to end: dep 288, arr 432
		{1, 2, 32400, 39600}, // 1@324 -> 0@360 -> 2@396
		{1, 2, 32401, timetable.Infinity},
		{0, 4, 0, 39600}, // 0@360 -> 4@396
		{0, 4, 36001, timetable.Infinity},
		{3, 4, 30000, 39600}, // 3@324 -> 0@360 -> 4@396
		{1, 1, 32400, 32400}, // already there
		{6, 5, 28800, 43200}, // trip 2
	}
	for _, c := range cases {
		if got := EarliestArrival(tt, c.s, c.g, c.t); got != c.want {
			t.Errorf("EA(%d,%d,%v) = %v, want %v", c.s, c.g, c.t, got, c.want)
		}
	}
}

func TestLatestDeparturePaperExample(t *testing.T) {
	tt := timetable.PaperExample()
	cases := []struct {
		s, g timetable.StopID
		t    timetable.Time
		want timetable.Time
	}{
		{1, 5, 43200, 39600}, // 1@396 -> 5@432
		{1, 5, 43199, timetable.NegInfinity},
		{5, 6, 43200, 28800}, // full trip 1
		{3, 4, 39600, 32400}, // 3@324 -> 0@360 -> 4@396
		{4, 4, 1000, 1000},
	}
	for _, c := range cases {
		if got := LatestDeparture(tt, c.s, c.g, c.t); got != c.want {
			t.Errorf("LD(%d,%d,%v) = %v, want %v", c.s, c.g, c.t, got, c.want)
		}
	}
}

func TestShortestDurationPaperExample(t *testing.T) {
	tt := timetable.PaperExample()
	cases := []struct {
		s, g    timetable.StopID
		t, tEnd timetable.Time
		want    timetable.Time
	}{
		{1, 5, 0, 86400, 3600},  // direct 1@396 -> 5@432
		{5, 6, 0, 86400, 14400}, // whole trip 1
		{5, 6, 0, 43199, timetable.Infinity},
		{3, 4, 0, 86400, 7200},
		{1, 1, 100, 200, 0},
		{1, 1, 300, 200, timetable.Infinity}, // empty window
	}
	for _, c := range cases {
		if got := ShortestDuration(tt, c.s, c.g, c.t, c.tEnd); got != c.want {
			t.Errorf("SD(%d,%d,%v,%v) = %v, want %v", c.s, c.g, c.t, c.tEnd, got, c.want)
		}
	}
}

func TestEarliestArrivalMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for iter := 0; iter < 30; iter++ {
		tt := randomTimetable(rng, 2+rng.Intn(15), rng.Intn(120))
		s := timetable.StopID(rng.Intn(tt.NumStops()))
		start := timetable.Time(rng.Intn(86400))
		got := EarliestArrivalAll(tt, s, start)
		want := bruteEA(tt, s, start)
		for v := range got {
			if got[v] != want[v] {
				t.Fatalf("iter %d: EA-all(%d,%v)[%d] = %v, want %v", iter, s, start, v, got[v], want[v])
			}
		}
	}
}

func TestLatestDepartureMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	for iter := 0; iter < 30; iter++ {
		tt := randomTimetable(rng, 2+rng.Intn(15), rng.Intn(120))
		g := timetable.StopID(rng.Intn(tt.NumStops()))
		end := timetable.Time(rng.Intn(2 * 86400))
		got := LatestDepartureAll(tt, g, end)
		want := bruteLD(tt, g, end)
		for v := range got {
			if got[v] != want[v] {
				t.Fatalf("iter %d: LD-all(%d,%v)[%d] = %v, want %v", iter, g, end, v, got[v], want[v])
			}
		}
	}
}

// TestProfileConsistentWithEA checks that evaluating the profile at any
// departure threshold reproduces the earliest-arrival query, and that
// profiles are Pareto-thinned and sorted.
func TestProfileConsistentWithEA(t *testing.T) {
	rng := rand.New(rand.NewSource(44))
	for iter := 0; iter < 15; iter++ {
		tt := randomTimetable(rng, 2+rng.Intn(12), rng.Intn(100))
		g := timetable.StopID(rng.Intn(tt.NumStops()))
		prof := ProfileAll(tt, g)
		for s := timetable.StopID(0); int(s) < tt.NumStops(); s++ {
			if s == g {
				continue
			}
			p := prof[s]
			for i := 1; i < len(p); i++ {
				if p[i-1].Dep >= p[i].Dep || p[i-1].Arr >= p[i].Arr {
					t.Fatalf("profile %d->%d not strictly increasing: %+v", s, g, p)
				}
			}
			// Evaluate at a few thresholds including every breakpoint.
			thresholds := []timetable.Time{0, 86400 * 2}
			for _, j := range p {
				thresholds = append(thresholds, j.Dep, j.Dep+1, j.Dep-1)
			}
			for _, th := range thresholds {
				if got, want := evalProfile(p, th), EarliestArrival(tt, s, g, th); got != want {
					t.Fatalf("profile eval %d->%d at %v = %v, want %v (profile %+v)", s, g, th, got, want, p)
				}
			}
		}
	}
}

func TestOneToManyMatchesPointQueries(t *testing.T) {
	rng := rand.New(rand.NewSource(45))
	tt := randomTimetable(rng, 20, 300)
	targets := []timetable.StopID{1, 4, 7, 13, 19}
	q := timetable.StopID(0)
	tq := timetable.Time(20000)

	ea := EarliestArrivalOneToMany(tt, q, targets, tq)
	for i, w := range targets {
		if want := EarliestArrival(tt, q, w, tq); ea[i] != want {
			t.Errorf("EA-OTM[%d] = %v, want %v", w, ea[i], want)
		}
	}
	ld := LatestDepartureOneToMany(tt, q, targets, 70000)
	for i, w := range targets {
		if want := LatestDeparture(tt, q, w, 70000); ld[i] != want {
			t.Errorf("LD-OTM[%d] = %v, want %v", w, ld[i], want)
		}
	}
}

func TestKNNOrderingAndTruncation(t *testing.T) {
	tt := timetable.PaperExample()
	targets := []timetable.StopID{4, 6}
	// Paper Section 3.2.1: EA-kNN(0, {4,6}, 36000, 1) = (4, 39600).
	got := EarliestArrivalKNN(tt, 0, targets, 36000, 1)
	if len(got) != 1 || got[0].Stop != 4 || got[0].When != 39600 {
		t.Fatalf("EA-kNN(0,{4,6},360,1) = %+v, want [(4, 396)]", got)
	}
	// k larger than reachable targets truncates.
	got = EarliestArrivalKNN(tt, 0, targets, 36000, 10)
	if len(got) != 2 || got[0].Stop != 4 || got[1].Stop != 6 {
		t.Fatalf("EA-kNN k=10 = %+v", got)
	}
	// After the last departure nothing is reachable.
	got = EarliestArrivalKNN(tt, 0, targets, 43201, 10)
	if len(got) != 0 {
		t.Fatalf("EA-kNN after close = %+v, want empty", got)
	}

	ld := LatestDepartureKNN(tt, 0, targets, 43200, 2)
	// 0 -> 6 arriving 432 departs 0 at 360; 0 -> 4 arriving 396 departs 360.
	if len(ld) != 2 || ld[0].When != 36000 || ld[1].When != 36000 {
		t.Fatalf("LD-kNN = %+v", ld)
	}
	if ld[0].Stop != 4 || ld[1].Stop != 6 {
		t.Fatalf("LD-kNN tie-break by stop id violated: %+v", ld)
	}
}

func TestEvalProfileEmpty(t *testing.T) {
	if got := evalProfile(nil, 0); got != timetable.Infinity {
		t.Errorf("evalProfile(nil) = %v, want Infinity", got)
	}
}

func TestInsertJourneyDominance(t *testing.T) {
	p := insertJourney(nil, Journey{Dep: 100, Arr: 200})
	p = insertJourney(p, Journey{Dep: 90, Arr: 250}) // dominated (earlier dep, later arr)
	if len(p) != 1 {
		t.Fatalf("dominated journey inserted: %+v", p)
	}
	p = insertJourney(p, Journey{Dep: 110, Arr: 190}) // dominates the first
	if len(p) != 1 || p[0].Dep != 110 {
		t.Fatalf("dominating journey did not evict: %+v", p)
	}
	p = insertJourney(p, Journey{Dep: 50, Arr: 60}) // incomparable
	if len(p) != 2 || p[0].Dep != 50 {
		t.Fatalf("incomparable journey mishandled: %+v", p)
	}
}
