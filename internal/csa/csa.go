// Package csa implements the Connection Scan Algorithm (CSA) family of
// timetable queries. It serves two roles in this repository:
//
//   - an exact reference oracle against which the TTL labels and the PTLDB
//     SQL queries are verified (machine-checked versions of the paper's
//     Theorems 3.1.1, 3.2.1 and 3.2.2), and
//   - the "main-memory solution" yardstick the paper's evaluation alludes to.
//
// The transfer model matches Timetable Labeling: changing vehicles at a stop
// is possible whenever the arrival time is no later than the departure time
// (no minimum transfer times, no footpaths).
package csa

import (
	"sort"

	"ptldb/internal/timetable"
)

// EarliestArrival answers EA(s, g, t): the earliest arrival time at g over
// journeys departing s no sooner than t. It returns timetable.Infinity when
// no such journey exists. EA(s, s, t) = t by convention (one is already
// there).
func EarliestArrival(tt *timetable.Timetable, s, g timetable.StopID, t timetable.Time) timetable.Time {
	if s == g {
		return t
	}
	arr := EarliestArrivalAll(tt, s, t)
	return arr[g]
}

// EarliestArrivalAll answers the one-to-all earliest-arrival query: element v
// of the result is EA(s, v, t) (timetable.Infinity when unreachable).
func EarliestArrivalAll(tt *timetable.Timetable, s timetable.StopID, t timetable.Time) []timetable.Time {
	arr := make([]timetable.Time, tt.NumStops())
	for i := range arr {
		arr[i] = timetable.Infinity
	}
	arr[s] = t
	conns := tt.Connections()
	// Connections are sorted by departure time: a single forward scan
	// relaxes every reachable connection.
	i := sort.Search(len(conns), func(i int) bool { return conns[i].Dep >= t })
	for ; i < len(conns); i++ {
		c := conns[i]
		if c.Dep >= arr[c.From] && c.Arr < arr[c.To] {
			arr[c.To] = c.Arr
		}
	}
	return arr
}

// LatestDeparture answers LD(s, g, t): the latest departure time from s over
// journeys arriving at g no later than t. It returns timetable.NegInfinity
// when no such journey exists. LD(s, s, t) = t by convention.
func LatestDeparture(tt *timetable.Timetable, s, g timetable.StopID, t timetable.Time) timetable.Time {
	if s == g {
		return t
	}
	dep := LatestDepartureAll(tt, g, t)
	return dep[s]
}

// LatestDepartureAll answers the all-to-one latest-departure query toward
// target g: element v of the result is LD(v, g, t).
func LatestDepartureAll(tt *timetable.Timetable, g timetable.StopID, t timetable.Time) []timetable.Time {
	dep := make([]timetable.Time, tt.NumStops())
	for i := range dep {
		dep[i] = timetable.NegInfinity
	}
	dep[g] = t
	conns := tt.Connections()
	// A backward scan in decreasing arrival order would need a second sort
	// permutation; scanning the departure-ordered list backwards is not
	// sufficient because a connection with later departure may arrive
	// earlier. Build (and cache nothing: the oracle favours simplicity) a
	// by-arrival order.
	idx := make([]int32, 0, len(conns))
	for i := range conns {
		if conns[i].Arr <= t {
			idx = append(idx, int32(i))
		}
	}
	sort.Slice(idx, func(a, b int) bool { return conns[idx[a]].Arr > conns[idx[b]].Arr })
	for _, ci := range idx {
		c := conns[ci]
		if c.Arr <= dep[c.To] && c.Dep > dep[c.From] {
			dep[c.From] = c.Dep
		}
	}
	return dep
}

// ShortestDuration answers SD(s, g, t, tEnd): the minimum duration
// (arrival − departure) over journeys departing s no sooner than t and
// arriving at g no later than tEnd, or timetable.Infinity if none exists.
// SD(s, s, …) = 0 by convention when t <= tEnd.
func ShortestDuration(tt *timetable.Timetable, s, g timetable.StopID, t, tEnd timetable.Time) timetable.Time {
	if t > tEnd {
		return timetable.Infinity
	}
	if s == g {
		return 0
	}
	best := timetable.Infinity
	for _, p := range Profile(tt, s, g) {
		if p.Dep >= t && p.Arr <= tEnd && p.Arr-p.Dep < best {
			best = p.Arr - p.Dep
		}
	}
	return best
}

// Journey is a Pareto-optimal departure/arrival pair for a fixed stop pair:
// departing later and arriving earlier are both better.
type Journey struct {
	Dep, Arr timetable.Time
}

// Profile returns every Pareto-optimal (departure, arrival) pair for journeys
// from s to g, sorted by increasing departure (and therefore increasing
// arrival). It returns nil when g is unreachable from s.
func Profile(tt *timetable.Timetable, s, g timetable.StopID) []Journey {
	return ProfileAll(tt, g)[s]
}

// ProfileAll runs the profile variant of CSA toward target g: element v of
// the result holds every Pareto-optimal (departure, arrival) pair for
// journeys v -> g, sorted by increasing departure. Element g is nil (the
// empty journey is implicit).
func ProfileAll(tt *timetable.Timetable, g timetable.StopID) [][]Journey {
	n := tt.NumStops()
	prof := make([][]Journey, n) // kept sorted by Dep ascending, Pareto-thinned
	conns := tt.Connections()
	// Scan in decreasing departure order.
	for i := len(conns) - 1; i >= 0; i-- {
		c := conns[i]
		// Earliest arrival at g when riding c, then continuing optimally.
		var arr timetable.Time
		if c.To == g {
			arr = c.Arr
		} else {
			arr = evalProfile(prof[c.To], c.Arr)
		}
		if arr == timetable.Infinity {
			continue
		}
		prof[c.From] = insertJourney(prof[c.From], Journey{Dep: c.Dep, Arr: arr})
	}
	return prof
}

// evalProfile returns the earliest arrival among pairs departing no earlier
// than t, or timetable.Infinity.
func evalProfile(p []Journey, t timetable.Time) timetable.Time {
	i := sort.Search(len(p), func(i int) bool { return p[i].Dep >= t })
	best := timetable.Infinity
	for ; i < len(p); i++ {
		if p[i].Arr < best {
			best = p[i].Arr
		}
	}
	return best
}

// insertJourney inserts j into the Pareto profile p (sorted by Dep) unless j
// is dominated, removing any pairs j dominates. A pair (d, a) dominates
// (d', a') when d >= d' and a <= a'.
func insertJourney(p []Journey, j Journey) []Journey {
	// Dominated if some existing pair departs no earlier and arrives no
	// later.
	for _, q := range p {
		if q.Dep >= j.Dep && q.Arr <= j.Arr {
			return p
		}
	}
	out := p[:0]
	for _, q := range p {
		if j.Dep >= q.Dep && j.Arr <= q.Arr {
			continue // j dominates q
		}
		out = append(out, q)
	}
	out = append(out, j)
	sort.Slice(out, func(a, b int) bool { return out[a].Dep < out[b].Dep })
	return out
}

// EarliestArrivalOneToMany answers EA-OTM(q, targets, t): element i of the
// result is the earliest arrival at targets[i] over journeys departing q no
// sooner than t (timetable.Infinity if unreachable).
func EarliestArrivalOneToMany(tt *timetable.Timetable, q timetable.StopID, targets []timetable.StopID, t timetable.Time) []timetable.Time {
	all := EarliestArrivalAll(tt, q, t)
	out := make([]timetable.Time, len(targets))
	for i, w := range targets {
		out[i] = all[w]
	}
	return out
}

// LatestDepartureOneToMany answers LD-OTM(q, targets, t): element i of the
// result is the latest departure from q over journeys arriving at targets[i]
// no later than t (timetable.NegInfinity if none).
func LatestDepartureOneToMany(tt *timetable.Timetable, q timetable.StopID, targets []timetable.StopID, t timetable.Time) []timetable.Time {
	out := make([]timetable.Time, len(targets))
	for i, w := range targets {
		if w == q {
			out[i] = t
			continue
		}
		out[i] = LatestDepartureAll(tt, w, t)[q]
	}
	return out
}

// Neighbor is one kNN result: a target stop and the optimum of the relevant
// criterion (arrival time for EA-kNN, departure time for LD-kNN).
type Neighbor struct {
	Stop timetable.StopID
	When timetable.Time
}

// EarliestArrivalKNN answers EA-kNN(q, targets, t, k): the k distinct target
// stops with the earliest arrival over journeys departing q no sooner than t.
// Ties are broken by stop id, matching the paper's ORDER BY MIN(ta), v2.
// Unreachable targets are never returned, so the result may hold fewer than k
// entries.
func EarliestArrivalKNN(tt *timetable.Timetable, q timetable.StopID, targets []timetable.StopID, t timetable.Time, k int) []Neighbor {
	arr := EarliestArrivalOneToMany(tt, q, targets, t)
	cand := make([]Neighbor, 0, len(targets))
	for i, w := range targets {
		if arr[i] < timetable.Infinity {
			cand = append(cand, Neighbor{Stop: w, When: arr[i]})
		}
	}
	sort.Slice(cand, func(a, b int) bool {
		if cand[a].When != cand[b].When {
			return cand[a].When < cand[b].When
		}
		return cand[a].Stop < cand[b].Stop
	})
	if len(cand) > k {
		cand = cand[:k]
	}
	return cand
}

// LatestDepartureKNN answers LD-kNN(q, targets, t, k): the k distinct target
// stops with the latest departure from q over journeys arriving no later than
// t. Ties are broken by stop id (ORDER BY MAX(td) DESC, v2).
func LatestDepartureKNN(tt *timetable.Timetable, q timetable.StopID, targets []timetable.StopID, t timetable.Time, k int) []Neighbor {
	dep := LatestDepartureOneToMany(tt, q, targets, t)
	cand := make([]Neighbor, 0, len(targets))
	for i, w := range targets {
		if dep[i] > timetable.NegInfinity {
			cand = append(cand, Neighbor{Stop: w, When: dep[i]})
		}
	}
	sort.Slice(cand, func(a, b int) bool {
		if cand[a].When != cand[b].When {
			return cand[a].When > cand[b].When
		}
		return cand[a].Stop < cand[b].Stop
	})
	if len(cand) > k {
		cand = cand[:k]
	}
	return cand
}
