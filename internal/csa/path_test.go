package csa

import (
	"math/rand"
	"testing"

	"ptldb/internal/timetable"
)

// checkJourney validates the structural invariants of a journey between s
// and g with the given time bounds.
func checkJourney(t *testing.T, tt *timetable.Timetable, j []timetable.Connection, s, g timetable.StopID) {
	t.Helper()
	if len(j) == 0 {
		if s != g {
			t.Fatalf("empty journey between distinct stops %d, %d", s, g)
		}
		return
	}
	if j[0].From != s || j[len(j)-1].To != g {
		t.Fatalf("journey endpoints %d->%d, want %d->%d", j[0].From, j[len(j)-1].To, s, g)
	}
	for i := 1; i < len(j); i++ {
		if j[i].From != j[i-1].To {
			t.Fatalf("journey not connected at leg %d: %+v", i, j)
		}
		if j[i].Dep < j[i-1].Arr {
			t.Fatalf("journey departs before arriving at leg %d: %+v", i, j)
		}
	}
}

func TestEarliestArrivalJourneyPaperExample(t *testing.T) {
	tt := timetable.PaperExample()
	j, ok := EarliestArrivalJourney(tt, 5, 6, 28800)
	if !ok {
		t.Fatal("5 -> 6 unreachable")
	}
	checkJourney(t, tt, j, 5, 6)
	if len(j) != 4 {
		t.Errorf("journey has %d legs, want 4 (full trip 1)", len(j))
	}
	if j[len(j)-1].Arr != 43200 {
		t.Errorf("arrival %v, want 43200", j[len(j)-1].Arr)
	}
	if Transfers(j) != 0 {
		t.Errorf("transfers = %d, want 0 (single trip)", Transfers(j))
	}

	// 3 -> 4 requires a transfer at stop 0 (trip 3 to trip 3's continuation
	// is trip 3 only from 0; the 3@324 leg is trip 3, the 0@360 -> 4 leg is
	// also trip 3): stay on one vehicle.
	j, ok = EarliestArrivalJourney(tt, 3, 4, 0)
	if !ok {
		t.Fatal("3 -> 4 unreachable")
	}
	checkJourney(t, tt, j, 3, 4)
	if j[len(j)-1].Arr != 39600 {
		t.Errorf("arrival %v", j[len(j)-1].Arr)
	}

	if _, ok := EarliestArrivalJourney(tt, 5, 6, 28801); ok {
		t.Error("journey found after last feasible departure")
	}
	if j, ok := EarliestArrivalJourney(tt, 2, 2, 100); !ok || len(j) != 0 {
		t.Error("same-stop journey not empty")
	}
}

func TestLatestDepartureJourneyPaperExample(t *testing.T) {
	tt := timetable.PaperExample()
	j, ok := LatestDepartureJourney(tt, 1, 5, 43200)
	if !ok {
		t.Fatal("1 -> 5 unreachable")
	}
	checkJourney(t, tt, j, 1, 5)
	if j[0].Dep != 39600 {
		t.Errorf("departure %v, want 39600", j[0].Dep)
	}
	if _, ok := LatestDepartureJourney(tt, 1, 5, 43199); ok {
		t.Error("journey found before earliest feasible arrival")
	}
}

// TestJourneysMatchScalarAnswers checks that reconstructed journeys realize
// exactly the EA/LD timestamps on random instances.
func TestJourneysMatchScalarAnswers(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	for iter := 0; iter < 10; iter++ {
		tt := randomTimetable(rng, 2+rng.Intn(15), rng.Intn(200))
		n := tt.NumStops()
		for trial := 0; trial < 40; trial++ {
			s := timetable.StopID(rng.Intn(n))
			g := timetable.StopID(rng.Intn(n))
			if s == g {
				continue
			}
			t0 := timetable.Time(rng.Intn(86400))
			want := EarliestArrival(tt, s, g, t0)
			j, ok := EarliestArrivalJourney(tt, s, g, t0)
			if ok != (want < timetable.Infinity) {
				t.Fatalf("EA journey ok=%v but EA=%v", ok, want)
			}
			if ok {
				checkJourney(t, tt, j, s, g)
				if j[0].Dep < t0 {
					t.Fatalf("journey departs %v before %v", j[0].Dep, t0)
				}
				if j[len(j)-1].Arr != want {
					t.Fatalf("journey arrives %v, EA=%v", j[len(j)-1].Arr, want)
				}
			}
			wantLD := LatestDeparture(tt, s, g, t0)
			jl, ok := LatestDepartureJourney(tt, s, g, t0)
			if ok != (wantLD > timetable.NegInfinity) {
				t.Fatalf("LD journey ok=%v but LD=%v", ok, wantLD)
			}
			if ok {
				checkJourney(t, tt, jl, s, g)
				if jl[len(jl)-1].Arr > t0 {
					t.Fatalf("journey arrives %v after %v", jl[len(jl)-1].Arr, t0)
				}
				if jl[0].Dep != wantLD {
					t.Fatalf("journey departs %v, LD=%v", jl[0].Dep, wantLD)
				}
			}
		}
	}
}

func TestTransfers(t *testing.T) {
	j := []timetable.Connection{
		{Trip: 1}, {Trip: 1}, {Trip: 2}, {Trip: 3}, {Trip: 3},
	}
	if got := Transfers(j); got != 2 {
		t.Errorf("Transfers = %d, want 2", got)
	}
	if Transfers(nil) != 0 {
		t.Error("Transfers(nil) != 0")
	}
}
