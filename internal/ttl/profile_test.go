package ttl

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"ptldb/internal/timetable"
)

// refProfile is a brute-force Pareto set for cross-checking the builder's
// incremental profile maintenance.
type refProfile []profEntry

func (p refProfile) dominated(e profEntry) bool {
	for _, q := range p {
		if q.d >= e.d && q.a <= e.a {
			return true
		}
	}
	return false
}

func (p refProfile) insert(e profEntry) refProfile {
	if p.dominated(e) {
		return p
	}
	out := p[:0]
	for _, q := range p {
		if e.d >= q.d && e.a <= q.a {
			continue
		}
		out = append(out, q)
	}
	out = append(out, e)
	sort.Slice(out, func(i, j int) bool { return out[i].d < out[j].d })
	return out
}

// TestProfileInsertMatchesBruteForce drives the builder's insert (and its
// binary-search helpers) against the brute-force reference on random
// insertion sequences.
func TestProfileInsertMatchesBruteForce(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		b := &builder{
			prof: make([][]profEntry, 1),
			meta: make([][]profMeta, 1),
			pos:  []int32{unreached},
		}
		var ref refProfile
		for i := 0; i < 60; i++ {
			e := profEntry{
				d: timetable.Time(rng.Intn(40)),
				a: timetable.Time(40 + rng.Intn(40)),
			}
			ref = ref.insert(e)
			// The builder only inserts non-dominated entries (dominance is
			// checked by the caller), so mirror that contract.
			if !dominatedForward(b.prof[0], e) {
				b.insert(0, e, profMeta{})
			}
			got := b.prof[0]
			if len(got) != len(ref) {
				return false
			}
			for j := range got {
				if got[j] != ref[j] {
					return false
				}
			}
			// Invariant: sorted and an antichain on both coordinates.
			for j := 1; j < len(got); j++ {
				if got[j-1].d >= got[j].d || got[j-1].a >= got[j].a {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// TestProfileSearchHelpers checks lastArrAtMost / firstDepAtLeast against
// linear scans on random sorted profiles.
func TestProfileSearchHelpers(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		var p []profEntry
		d, a := timetable.Time(0), timetable.Time(0)
		for i := 0; i < rng.Intn(30); i++ {
			d += timetable.Time(1 + rng.Intn(5))
			a += timetable.Time(1 + rng.Intn(5))
			p = append(p, profEntry{d: d, a: a})
		}
		for trial := 0; trial < 20; trial++ {
			t0 := timetable.Time(rng.Intn(200))
			// lastArrAtMost: last index with a <= t0.
			want := -1
			for i := range p {
				if p[i].a <= t0 {
					want = i
				}
			}
			if got := lastArrAtMost(p, t0); got != want {
				return false
			}
			// firstDepAtLeast: first index with d >= t0.
			want = -1
			for i := range p {
				if p[i].d >= t0 {
					want = i
					break
				}
			}
			if got := firstDepAtLeast(p, t0); got != want {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

// TestSplice checks the generic slice surgery used by profile insertion.
func TestSplice(t *testing.T) {
	base := func() []int { return []int{1, 2, 3, 4, 5} }
	cases := []struct {
		lo, hi int
		want   []int
	}{
		{0, 0, []int{9, 1, 2, 3, 4, 5}}, // pure insert at head
		{5, 5, []int{1, 2, 3, 4, 5, 9}}, // pure insert at tail
		{2, 2, []int{1, 2, 9, 3, 4, 5}}, // insert mid
		{1, 2, []int{1, 9, 3, 4, 5}},    // replace one
		{1, 4, []int{1, 9, 5}},          // replace run
		{0, 5, []int{9}},                // replace all
	}
	for _, c := range cases {
		got := splice(base(), c.lo, c.hi, 9)
		if len(got) != len(c.want) {
			t.Fatalf("splice(%d,%d) = %v, want %v", c.lo, c.hi, got, c.want)
		}
		for i := range got {
			if got[i] != c.want[i] {
				t.Fatalf("splice(%d,%d) = %v, want %v", c.lo, c.hi, got, c.want)
			}
		}
	}
}
