package ttl

import (
	"runtime"
	"sync"

	"ptldb/internal/order"
	"ptldb/internal/timetable"
)

// Build constructs the TTL index for tt under the given vertex order using
// pruned time-dependent profile searches, the timetable analogue of Pruned
// Landmark Labeling: hubs are processed from most to least important, and a
// candidate journey is discarded as soon as the labels built so far already
// certify a journey that departs no earlier and arrives no later.
//
// The resulting labels are canonical for (tt, ord): they satisfy the cover
// property (every Pareto-optimal journey is witnessed by its most important
// stop) and contain no tuple whose journey is covered by more important hubs.
//
// Each per-hub search is a connection scan restricted to reached stops: a
// priority queue merges the time-sorted connection lists of the stops that
// already carry a Pareto profile entry, so unreachable parts of the timetable
// cost nothing — essential once pruning shrinks the searches of unimportant
// hubs to a handful of stops.
//
// Build is BuildParallel with one worker.
func Build(tt *timetable.Timetable, ord order.Order) *Labels {
	return BuildParallel(tt, ord, 1)
}

// BuildParallel constructs the TTL index on the given number of workers
// using rank-batched wave parallelism, in the spirit of the parallel label
// generation of Public Transit Labeling (Delling et al. 2015): hubs are
// taken in rank order in batches of K; the workers run the pruned forward
// and backward searches of a whole batch against the labels committed by
// earlier batches only, and the batch's tentative tuples are then committed
// serially in rank order, re-checking each tuple's cover condition so that
// tuples covered by a more-important hub of the same batch are cross-pruned.
//
// Searching against the committed labels only makes the in-search pruning
// conservative (fewer labels can only certify fewer journeys), so every
// tuple the serial build emits is also generated here; the commit-time
// re-check runs against exactly the label state the serial build saw at that
// hub's turn, so everything extra is filtered out again. The output is
// therefore byte-identical to Build's for every worker count and batch size
// (the determinism tests assert this, metadata included).
func BuildParallel(tt *timetable.Timetable, ord order.Order, workers int) *Labels {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers == 1 {
		return buildSerial(tt, ord)
	}
	return buildWaves(tt, ord, workers)
}

// buildSerial is the reference single-worker build. Even here two searches
// run at a time: the forward search of a hub reads L_out(h) and the backward
// search reads L_in(h), both write only their own scratch state, so one
// long-lived goroutine runs every forward search while the caller's
// goroutine runs the backward ones.
func buildSerial(tt *timetable.Timetable, ord order.Order) *Labels {
	l := newLabels(tt, ord)
	fwd, bwd := newBuilder(tt, l), newBuilder(tt, l)
	hubs := make(chan timetable.StopID)
	fdone := make(chan struct{})
	go func() {
		for h := range hubs {
			fwd.forward(h)
			fdone <- struct{}{}
		}
	}()
	for _, h := range ord {
		hubs <- h
		bwd.backward(h)
		<-fdone
		// Tuples from a one-hub batch are uncovered by construction: the
		// searches checked against the full committed label set.
		for _, p := range fwd.pend {
			l.In[p.w] = append(l.In[p.w], p.t)
		}
		for _, p := range bwd.pend {
			l.Out[p.w] = append(l.Out[p.w], p.t)
		}
	}
	close(hubs)
	finishLabels(l)
	return l
}

// waveTask asks a worker to run one direction of one hub's profile search
// and leave the tentative tuples in *dst.
type waveTask struct {
	hub     timetable.StopID
	forward bool
	dst     *[]pendingTuple
}

// buildWaves is the rank-batched parallel build. Within a wave the workers
// only read the committed labels and write their own result slot, so the
// wave needs no locking: the task channel orders slot writes after the
// previous commit, and the WaitGroup orders the commit after all slot
// writes.
func buildWaves(tt *timetable.Timetable, ord order.Order, workers int) *Labels {
	l := newLabels(tt, ord)
	batch := 4 * workers
	if batch > len(ord) && len(ord) > 0 {
		batch = len(ord)
	}
	tasks := make(chan waveTask)
	var wg sync.WaitGroup
	for i := 0; i < workers; i++ {
		go func() {
			b := newBuilder(tt, l)
			for t := range tasks {
				if t.forward {
					b.forward(t.hub)
				} else {
					b.backward(t.hub)
				}
				*t.dst = append((*t.dst)[:0], b.pend...)
				wg.Done()
			}
		}()
	}
	// Scratch builder for the commit-time cover re-checks.
	cb := newBuilder(tt, l)
	fwdPend := make([][]pendingTuple, batch)
	bwdPend := make([][]pendingTuple, batch)
	for lo := 0; lo < len(ord); lo += batch {
		hi := lo + batch
		if hi > len(ord) {
			hi = len(ord)
		}
		wg.Add(2 * (hi - lo))
		for i := lo; i < hi; i++ {
			tasks <- waveTask{hub: ord[i], forward: true, dst: &fwdPend[i-lo]}
			tasks <- waveTask{hub: ord[i], forward: false, dst: &bwdPend[i-lo]}
		}
		wg.Wait()
		for i := lo; i < hi; i++ {
			commitHub(cb, ord[i], fwdPend[i-lo], bwdPend[i-lo])
		}
	}
	close(tasks)
	finishLabels(l)
	return l
}

// commitHub appends hub h's tentative tuples to the labels, dropping every
// tuple whose cover condition now fails. The searches of h's wave pruned
// against the labels committed before the wave started; by the time h
// commits, the more-important hubs of the same wave have already committed,
// so the re-check sees exactly the label state the serial build saw at h's
// turn — this is the cross-prune that restores canonicality.
func commitHub(b *builder, h timetable.StopID, fwdPend, bwdPend []pendingTuple) {
	// L_out(h) (respectively L_in(h)) holds only tuples of more-important
	// hubs: less-important hubs have not committed yet, and h's own searches
	// skip journeys touching h again. Tuples of h itself appended below are
	// skipped by the cover scan's h2 != h test, keeping the check equivalent
	// to the serial one as the appends proceed.
	b.buildHubIndex(b.l.Out[h])
	for _, p := range fwdPend {
		if !b.coveredForward(b.l.In[p.w], h, p.w, p.t.Dep, p.t.Arr) {
			b.l.In[p.w] = append(b.l.In[p.w], p.t)
		}
	}
	b.releaseHubIndex()
	b.buildHubIndex(b.l.In[h])
	for _, p := range bwdPend {
		if !b.coveredBackward(b.l.Out[p.w], h, p.w, p.t.Dep, p.t.Arr) {
			b.l.Out[p.w] = append(b.l.Out[p.w], p.t)
		}
	}
	b.releaseHubIndex()
}

// finishLabels puts every per-stop label array into canonical (Hub, Dep)
// order.
func finishLabels(l *Labels) {
	for v := range l.In {
		sortLabel(l.In[v])
		sortLabel(l.Out[v])
	}
}
