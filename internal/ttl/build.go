package ttl

import (
	"sort"

	"ptldb/internal/order"
	"ptldb/internal/timetable"
)

// newLabels allocates the empty label arrays for tt under ord.
func newLabels(tt *timetable.Timetable, ord order.Order) *Labels {
	n := tt.NumStops()
	return &Labels{
		In:    make([][]Tuple, n),
		Out:   make([][]Tuple, n),
		Ranks: ord.Ranks(),
	}
}

// newBuilder allocates the per-search scratch state for one worker. Builders
// share the label set l read-only during searches; tuples are committed to l
// by the orchestration in parallel.go, never by the searches themselves.
func newBuilder(tt *timetable.Timetable, l *Labels) *builder {
	b := &builder{
		tt:        tt,
		l:         l,
		ranks:     l.Ranks,
		prof:      make([][]profEntry, tt.NumStops()),
		meta:      make([][]profMeta, tt.NumStops()),
		pos:       make([]int32, tt.NumStops()),
		hubBlocks: make([]hubBlock, tt.NumStops()),
	}
	for i := range b.pos {
		b.pos[i] = unreached
	}
	return b
}

// Stream position sentinels (regular positions are >= 0).
const (
	unreached int32 = -1 // stop has no profile entry yet
	exhausted int32 = -2 // stream consumed its whole connection list
)

// profEntry is one Pareto profile point: a journey between the current hub
// and a stop, departing at d and arriving at a. Profiles are kept sorted by
// d; being Pareto antichains they are then sorted by a as well.
type profEntry struct {
	d, a timetable.Time
}

// profMeta carries reconstruction metadata parallel to profEntry. first is
// the trip of the journey's first leg (what label tuples record), last the
// trip of its final leg (needed to detect transfers when extending), and
// pivot the first transfer stop (NoStop while the journey is single-trip).
type profMeta struct {
	pivot       timetable.StopID
	first, last timetable.TripID
}

// metaLess orders profile metadata lexicographically. When several distinct
// journeys realize the same (departure, arrival) pair the profile keeps the
// smallest metadata, so the recorded witness does not depend on the order
// candidates were generated in — wave searches prune against fewer labels
// than the serial build and therefore explore extra (covered) paths, and
// without the canonical choice the surviving tuples' pivot/trip columns could
// differ between worker counts.
func metaLess(a, b profMeta) bool {
	if a.first != b.first {
		return a.first < b.first
	}
	if a.pivot != b.pivot {
		return a.pivot < b.pivot
	}
	return a.last < b.last
}

// pendingTuple is one tentative label tuple produced by a search: the
// destination stop and the tuple to append to its label once the tuple is
// (re-)confirmed uncovered at commit time.
type pendingTuple struct {
	w timetable.StopID
	t Tuple
}

// builder carries the scratch state shared by the per-hub searches.
type builder struct {
	tt    *timetable.Timetable
	l     *Labels
	ranks []int32

	// prof[w] is the Pareto profile of the current search at stop w, with
	// meta[w] parallel; pos[w] is the stream position into the stop's
	// connection list. touched lists stops to reset after the search.
	prof    [][]profEntry
	meta    [][]profMeta
	pos     []int32
	touched []timetable.StopID

	// hubBlocks indexes the current hub's own label by hub stop for cover
	// queries; hubUsed lists the occupied slots for reset.
	hubBlocks []hubBlock
	hubUsed   []timetable.StopID

	// pend collects the surviving profile entries of the current search as
	// tentative tuples; the orchestration commits them to l afterwards.
	pend []pendingTuple

	pq streamHeap
}

// forward runs the pruned forward profile search from hub h, collecting a
// tentative tuple ⟨h, d, a⟩ for L_in(w) in b.pend for every Pareto journey
// h -> w not covered by the labels committed so far. Connections are
// processed in increasing departure order; strictly positive durations
// guarantee that when a connection departing at time t is processed, every
// journey arriving at its departure stop by t is already in the profile.
func (b *builder) forward(h timetable.StopID) {
	tt, rankH := b.tt, b.ranks[h]
	b.buildHubIndex(b.l.Out[h])
	b.pq = b.pq[:0]
	b.pend = b.pend[:0]

	// The hub's own stream covers the whole day: one may start from h at any
	// time.
	b.openForwardStream(h, 0)

	for len(b.pq) > 0 {
		it := b.pop()
		u := it.stop
		if it.pos != b.pos[u] {
			continue // stale: the stream was rewound or advanced
		}
		out := tt.Outgoing(u)
		c := tt.Connection(out[it.pos])
		// Advance the stream before relaxing so that a rewind triggered by
		// the relaxation itself is not clobbered.
		if int(it.pos)+1 < len(out) {
			b.pos[u] = it.pos + 1
			b.push(streamItem{key: int64(tt.Connection(out[it.pos+1]).Dep), stop: u, pos: it.pos + 1})
		} else {
			b.pos[u] = exhausted
		}

		// Best (latest) departure from h that reaches u by c.Dep.
		var cand profEntry
		var m profMeta
		if u == h {
			cand = profEntry{d: c.Dep, a: c.Arr}
			m = profMeta{pivot: timetable.NoStop, first: c.Trip, last: c.Trip}
		} else {
			i := lastArrAtMost(b.prof[u], c.Dep)
			if i < 0 {
				continue
			}
			cand = profEntry{d: b.prof[u][i].d, a: c.Arr}
			m = b.meta[u][i]
			if c.Trip != m.last && m.pivot == timetable.NoStop {
				m.pivot = u
			}
			m.last = c.Trip
		}
		w := c.To
		if w == h || b.ranks[w] < rankH {
			// Journeys back to the hub decompose into later starts; journeys
			// to more important stops are covered by earlier hubs.
			continue
		}
		if i := lastArrAtMost(b.prof[w], cand.a); i >= 0 && b.prof[w][i].d >= cand.d {
			// Dominated. On an exact coordinate tie canonicalize the stored
			// metadata (see metaLess); the tying entry, if any, is exactly
			// the one the dominance probe found.
			if b.prof[w][i] == cand && metaLess(m, b.meta[w][i]) {
				b.meta[w][i] = m
			}
			continue
		}
		if b.coveredForward(b.l.In[w], h, w, cand.d, cand.a) {
			continue
		}
		b.insertForward(w, cand, m)
	}
	b.collect(h)
}

// backward runs the pruned backward profile search toward hub h, collecting
// tentative tuples ⟨h, d, a⟩ for L_out(w) in b.pend for every Pareto journey
// w -> h not covered by the labels committed so far. Connections are
// processed in decreasing arrival order over the incoming lists of reached
// stops.
func (b *builder) backward(h timetable.StopID) {
	tt, rankH := b.tt, b.ranks[h]
	b.buildHubIndex(b.l.In[h])
	b.pq = b.pq[:0]
	b.pend = b.pend[:0]

	b.openBackwardStream(h, int32(len(tt.Incoming(h)))-1)

	for len(b.pq) > 0 {
		it := b.pop()
		v := it.stop
		if it.pos != b.pos[v] {
			continue
		}
		in := tt.Incoming(v)
		c := tt.Connection(in[it.pos])
		if it.pos > 0 {
			b.pos[v] = it.pos - 1
			b.push(streamItem{key: -int64(tt.Connection(in[it.pos-1]).Arr), stop: v, pos: it.pos - 1})
		} else {
			b.pos[v] = exhausted
		}

		// Best (earliest) arrival at h for journeys leaving v at or after
		// c.Arr.
		var cand profEntry
		var m profMeta
		if v == h {
			cand = profEntry{d: c.Dep, a: c.Arr}
			m = profMeta{pivot: timetable.NoStop, first: c.Trip, last: c.Trip}
		} else {
			i := firstDepAtLeast(b.prof[v], c.Arr)
			if i < 0 {
				continue
			}
			cand = profEntry{d: c.Dep, a: b.prof[v][i].a}
			m = b.meta[v][i]
			if c.Trip != m.first && m.pivot == timetable.NoStop {
				m.pivot = v
			}
			m.first = c.Trip
		}
		w := c.From
		if w == h || b.ranks[w] < rankH {
			continue
		}
		if i := firstDepAtLeast(b.prof[w], cand.d); i >= 0 && b.prof[w][i].a <= cand.a {
			if b.prof[w][i] == cand && metaLess(m, b.meta[w][i]) {
				b.meta[w][i] = m
			}
			continue
		}
		if b.coveredBackward(b.l.Out[w], h, w, cand.d, cand.a) {
			continue
		}
		b.insertBackward(w, cand, m)
	}
	b.collect(h)
}

// collect drains the surviving profile entries of hub h's search into b.pend
// (in touch order, each stop's entries sorted by departure) and resets the
// per-search scratch state.
func (b *builder) collect(h timetable.StopID) {
	for _, w := range b.touched {
		for i, e := range b.prof[w] {
			m := b.meta[w][i]
			b.pend = append(b.pend, pendingTuple{w: w, t: Tuple{Hub: h, Dep: e.d, Arr: e.a, Pivot: m.pivot, Trip: m.first}})
		}
		b.prof[w] = b.prof[w][:0]
		b.meta[w] = b.meta[w][:0]
		b.pos[w] = unreached
	}
	b.touched = b.touched[:0]
	b.pos[h] = unreached
	b.releaseHubIndex()
}

func (b *builder) openForwardStream(u timetable.StopID, pos int32) {
	out := b.tt.Outgoing(u)
	if int(pos) >= len(out) {
		b.pos[u] = exhausted
		return
	}
	b.pos[u] = pos
	b.push(streamItem{key: int64(b.tt.Connection(out[pos]).Dep), stop: u, pos: pos})
}

func (b *builder) openBackwardStream(u timetable.StopID, pos int32) {
	if pos < 0 {
		b.pos[u] = exhausted
		return
	}
	in := b.tt.Incoming(u)
	b.pos[u] = pos
	b.push(streamItem{key: -int64(b.tt.Connection(in[pos]).Arr), stop: u, pos: pos})
}

// lastArrAtMost returns the index of the profile entry with the largest
// departure among those arriving no later than t, or -1. Profiles are sorted
// by both coordinates, so this is the last entry with a <= t.
func lastArrAtMost(p []profEntry, t timetable.Time) int {
	lo, hi := 0, len(p)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if p[mid].a <= t {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo - 1
}

// firstDepAtLeast returns the index of the profile entry with the smallest
// arrival among those departing no earlier than t, or -1.
func firstDepAtLeast(p []profEntry, t timetable.Time) int {
	lo, hi := 0, len(p)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if p[mid].d < t {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo == len(p) {
		return -1
	}
	return lo
}

func dominatedForward(p []profEntry, e profEntry) bool {
	// Dominated iff some entry departs >= e.d and arrives <= e.a; with the
	// sort order it suffices to inspect the last entry arriving <= e.a.
	i := lastArrAtMost(p, e.a)
	return i >= 0 && p[i].d >= e.d
}

func dominatedBackward(p []profEntry, e profEntry) bool {
	i := firstDepAtLeast(p, e.d)
	return i >= 0 && p[i].a <= e.a
}

// insertForward adds e to w's profile, evicting entries e dominates, and
// opens or rewinds w's outgoing stream to cover departures >= e.a.
// Connections between a rewound position and the previous one depart later
// than the current scan clock, so none is processed twice.
func (b *builder) insertForward(w timetable.StopID, e profEntry, m profMeta) {
	b.insert(w, e, m)
	out := b.tt.Outgoing(w)
	start := int32(sort.Search(len(out), func(i int) bool { return b.tt.Connection(out[i]).Dep >= e.a }))
	if int(start) >= len(out) {
		if b.pos[w] == unreached {
			b.pos[w] = exhausted
		}
		return
	}
	if b.pos[w] == unreached || b.pos[w] == exhausted || start < b.pos[w] {
		b.pos[w] = start
		b.push(streamItem{key: int64(b.tt.Connection(out[start]).Dep), stop: w, pos: start})
	}
}

// insertBackward adds e and opens or rewinds w's incoming stream to cover
// arrivals <= e.d (streams run backward in time).
func (b *builder) insertBackward(w timetable.StopID, e profEntry, m profMeta) {
	b.insert(w, e, m)
	in := b.tt.Incoming(w)
	// Last index with arr <= e.d.
	start := int32(sort.Search(len(in), func(i int) bool { return b.tt.Connection(in[i]).Arr > e.d })) - 1
	if start < 0 {
		if b.pos[w] == unreached {
			b.pos[w] = exhausted
		}
		return
	}
	if b.pos[w] == unreached || b.pos[w] == exhausted || start > b.pos[w] {
		b.pos[w] = start
		b.push(streamItem{key: -int64(b.tt.Connection(in[start]).Arr), stop: w, pos: start})
	}
}

// insert performs the Pareto insertion shared by both directions: e replaces
// every entry it dominates (a contiguous run around its departure position).
func (b *builder) insert(w timetable.StopID, e profEntry, m profMeta) {
	p, ms := b.prof[w], b.meta[w]
	if len(p) == 0 {
		b.touched = append(b.touched, w)
	}
	i := sort.Search(len(p), func(i int) bool { return p[i].d >= e.d })
	// Entries left of i have d < e.d; those arriving >= e.a are dominated by
	// e and, arrivals being sorted, form the run immediately left of i.
	lo := i
	for lo > 0 && p[lo-1].a >= e.a {
		lo--
	}
	// An existing entry with d == e.d must have a > e.a (e is not
	// dominated), so it is dominated by e.
	hi := i
	if hi < len(p) && p[hi].d == e.d {
		hi++
	}
	b.prof[w] = splice(p, lo, hi, e)
	b.meta[w] = splice(ms, lo, hi, m)
}

// splice replaces s[lo:hi] with the single element e.
func splice[T any](s []T, lo, hi int, e T) []T {
	switch {
	case hi-lo == 1:
		s[lo] = e
		return s
	case hi-lo > 1:
		s[lo] = e
		return append(s[:lo+1], s[hi:]...)
	default: // hi == lo: pure insertion
		var zero T
		s = append(s, zero)
		copy(s[lo+1:], s[lo:len(s)-1])
		s[lo] = e
		return s
	}
}

// hubBlock summarizes the current hub's label tuples for one hub stop:
// departures ascending with the suffix-minimum of arrivals, so that "exists a
// tuple departing >= d and arriving <= a" is a binary search.
type hubBlock struct {
	deps      []timetable.Time
	sufMinArr []timetable.Time
}

// buildHubIndex groups label (the current hub's own L_out or L_in) by hub.
// During construction tuples of one hub are contiguous and sorted by
// departure, because each earlier hub appended its batch in profile order.
func (b *builder) buildHubIndex(label []Tuple) {
	i := 0
	for i < len(label) {
		h := label[i].Hub
		j := i
		for j < len(label) && label[j].Hub == h {
			j++
		}
		blk := hubBlock{
			deps:      make([]timetable.Time, j-i),
			sufMinArr: make([]timetable.Time, j-i),
		}
		min := timetable.Infinity
		for k := j - 1; k >= i; k-- {
			blk.deps[k-i] = label[k].Dep
			if label[k].Arr < min {
				min = label[k].Arr
			}
			blk.sufMinArr[k-i] = min
		}
		b.hubBlocks[h] = blk
		b.hubUsed = append(b.hubUsed, h)
		i = j
	}
}

func (b *builder) releaseHubIndex() {
	for _, h := range b.hubUsed {
		b.hubBlocks[h] = hubBlock{}
	}
	b.hubUsed = b.hubUsed[:0]
}

// minArrFrom returns the minimum arrival among tuples departing >= d, or
// timetable.Infinity.
func (blk *hubBlock) minArrFrom(d timetable.Time) timetable.Time {
	lo, hi := 0, len(blk.deps)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if blk.deps[mid] < d {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo == len(blk.deps) {
		return timetable.Infinity
	}
	return blk.sufMinArr[lo]
}

// coveredForward reports whether the labels built by hubs more important than
// h already certify a journey h -> w departing no earlier than d and arriving
// no later than a. The hub index holds L_out(h); lin is L_in(w).
func (b *builder) coveredForward(lin []Tuple, h, w timetable.StopID, d, a timetable.Time) bool {
	// Direct: a tuple in L_out(h) whose hub is w itself.
	if blk := &b.hubBlocks[w]; len(blk.deps) > 0 && blk.minArrFrom(d) <= a {
		return true
	}
	// Tuples in lin are contiguous per hub, so the transfer-time bound from
	// L_out(h) is computed once per block.
	for i := 0; i < len(lin); {
		h2 := lin[i].Hub
		j := i
		for j < len(lin) && lin[j].Hub == h2 {
			j++
		}
		// Tuples with hub h are this search's own output.
		if h2 != h {
			if blk := &b.hubBlocks[h2]; len(blk.deps) > 0 {
				if minArr := blk.minArrFrom(d); minArr != timetable.Infinity {
					for k := i; k < j; k++ {
						if lin[k].Dep >= minArr && lin[k].Arr <= a {
							return true
						}
					}
				}
			}
		}
		i = j
	}
	return false
}

// coveredBackward reports whether existing labels certify a journey w -> h
// departing >= d and arriving <= a. The hub index holds L_in(h); lout is
// L_out(w).
func (b *builder) coveredBackward(lout []Tuple, h, w timetable.StopID, d, a timetable.Time) bool {
	// Direct: a tuple in L_in(h) whose hub is w itself.
	if blk := &b.hubBlocks[w]; len(blk.deps) > 0 && blk.minArrFrom(d) <= a {
		return true
	}
	// For a block of L_out(w) tuples sharing a hub, minArrFrom is monotone
	// in its argument, so only the earliest transfer arrival among tuples
	// departing >= d needs to be probed.
	for i := 0; i < len(lout); {
		h2 := lout[i].Hub
		j := i
		for j < len(lout) && lout[j].Hub == h2 {
			j++
		}
		if h2 != h {
			if blk := &b.hubBlocks[h2]; len(blk.deps) > 0 {
				xArrMin := timetable.Infinity
				for k := i; k < j; k++ {
					if lout[k].Dep >= d && lout[k].Arr < xArrMin {
						xArrMin = lout[k].Arr
					}
				}
				if xArrMin != timetable.Infinity && blk.minArrFrom(xArrMin) <= a {
					return true
				}
			}
		}
		i = j
	}
	return false
}

// streamItem is a pending connection-stream head: the connection at index pos
// of stop's outgoing (forward) or incoming (backward) list.
type streamItem struct {
	key  int64 // departure (forward) or negated arrival (backward)
	stop timetable.StopID
	pos  int32
}

// streamHeap is a binary min-heap of stream heads, specialized to avoid
// container/heap interface overhead in the innermost preprocessing loop.
type streamHeap []streamItem

func (b *builder) push(e streamItem) {
	h := b.pq
	h = append(h, e)
	i := len(h) - 1
	for i > 0 {
		p := (i - 1) / 2
		if h[p].key <= h[i].key {
			break
		}
		h[p], h[i] = h[i], h[p]
		i = p
	}
	b.pq = h
}

func (b *builder) pop() streamItem {
	h := b.pq
	top := h[0]
	last := len(h) - 1
	h[0] = h[last]
	h = h[:last]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		s := i
		if l < len(h) && h[l].key < h[s].key {
			s = l
		}
		if r < len(h) && h[r].key < h[s].key {
			s = r
		}
		if s == i {
			break
		}
		h[i], h[s] = h[s], h[i]
		i = s
	}
	b.pq = h
	return top
}
