package ttl

import (
	"math/rand"
	"reflect"
	"testing"

	"ptldb/internal/csa"
	"ptldb/internal/order"
	"ptldb/internal/timetable"
)

// tup abbreviates hub/dep/arr triples (times in the paper's 100 s units) for
// comparison against Table 1 of the paper.
type tup struct {
	hub      timetable.StopID
	dep, arr timetable.Time
}

func project(ts []Tuple) []tup {
	out := make([]tup, 0, len(ts))
	for _, t := range ts {
		out = append(out, tup{t.Hub, t.Dep / 100, t.Arr / 100})
	}
	return out
}

func buildPaperLabels(t *testing.T) *Labels {
	t.Helper()
	tt := timetable.PaperExample()
	l := Build(tt, order.Identity(7))
	if err := l.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	return l
}

// TestBuildMatchesPaperTable1 compares the constructed labels with the
// non-dummy rows of Table 1 of the paper.
func TestBuildMatchesPaperTable1(t *testing.T) {
	l := buildPaperLabels(t)
	wantOut := [][]tup{
		0: {},
		1: {{0, 324, 360}},
		2: {{0, 324, 360}},
		3: {{0, 324, 360}},
		4: {{0, 324, 360}},
		5: {{0, 288, 360}, {1, 288, 324}},
		6: {{0, 288, 360}, {2, 288, 324}},
	}
	wantIn := [][]tup{
		0: {},
		1: {{0, 360, 396}},
		2: {{0, 360, 396}},
		3: {{0, 360, 396}},
		4: {{0, 360, 396}},
		5: {{0, 360, 432}, {1, 396, 432}},
		6: {{0, 360, 432}, {2, 396, 432}},
	}
	for v := 0; v < 7; v++ {
		if got := project(l.Out[v]); !reflect.DeepEqual(got, wantOut[v]) {
			t.Errorf("L_out(%d) = %v, want %v", v, got, wantOut[v])
		}
		if got := project(l.In[v]); !reflect.DeepEqual(got, wantIn[v]) {
			t.Errorf("L_in(%d) = %v, want %v", v, got, wantIn[v])
		}
	}
}

// TestAugmentMatchesPaperTable1 checks the dummy tuples (bold rows of
// Table 1).
func TestAugmentMatchesPaperTable1(t *testing.T) {
	l := buildPaperLabels(t).Augment()
	if err := l.Validate(); err != nil {
		t.Fatalf("Validate after Augment: %v", err)
	}
	wantOut := [][]tup{
		0: {{0, 360, 360}},
		1: {{0, 324, 360}, {1, 324, 324}, {1, 396, 396}},
		2: {{0, 324, 360}, {2, 324, 324}, {2, 396, 396}},
		3: {{0, 324, 360}, {3, 396, 396}},
		4: {{0, 324, 360}, {4, 396, 396}},
		5: {{0, 288, 360}, {1, 288, 324}, {5, 432, 432}},
		6: {{0, 288, 360}, {2, 288, 324}, {6, 432, 432}},
	}
	wantIn := [][]tup{
		0: {{0, 360, 360}},
		1: {{0, 360, 396}, {1, 324, 324}, {1, 396, 396}},
		2: {{0, 360, 396}, {2, 324, 324}, {2, 396, 396}},
		3: {{0, 360, 396}, {3, 396, 396}},
		4: {{0, 360, 396}, {4, 396, 396}},
		5: {{0, 360, 432}, {1, 396, 432}, {5, 432, 432}},
		6: {{0, 360, 432}, {2, 396, 432}, {6, 432, 432}},
	}
	for v := 0; v < 7; v++ {
		if got := project(l.Out[v]); !reflect.DeepEqual(got, wantOut[v]) {
			t.Errorf("augmented L_out(%d) = %v, want %v", v, got, wantOut[v])
		}
		if got := project(l.In[v]); !reflect.DeepEqual(got, wantIn[v]) {
			t.Errorf("augmented L_in(%d) = %v, want %v", v, got, wantIn[v])
		}
	}
	// Idempotence.
	before := l.NumTuples()
	if l.Augment(); l.NumTuples() != before {
		t.Errorf("Augment not idempotent: %d -> %d tuples", before, l.NumTuples())
	}
}

// TestPaperEAQuery reproduces the worked query of Section 3.1:
// EA(1, 1, 324) = 324 through the unified single-join form.
func TestPaperEAQuery(t *testing.T) {
	l := buildPaperLabels(t).Augment()
	if got := l.EarliestArrivalUnified(1, 1, 32400); got != 32400 {
		t.Errorf("EA(1,1,324) = %v, want 324*100", got)
	}
}

func randomTimetable(rng *rand.Rand, stops, conns int) *timetable.Timetable {
	var b timetable.Builder
	b.AddStops(stops)
	for i := 0; i < conns; i++ {
		from := timetable.StopID(rng.Intn(stops))
		to := timetable.StopID(rng.Intn(stops))
		if from == to {
			to = (to + 1) % timetable.StopID(stops)
		}
		dep := timetable.Time(rng.Intn(86400))
		b.AddConnection(from, to, dep, dep+1+timetable.Time(rng.Intn(5400)), timetable.TripID(rng.Intn(60)))
	}
	return b.MustBuild()
}

func randomOrder(rng *rand.Rand, tt *timetable.Timetable, iter int) order.Order {
	switch iter % 3 {
	case 0:
		return order.ByDegree(tt)
	case 1:
		return order.ByNeighborDegree(tt)
	default:
		return order.Random(tt.NumStops(), rng.Int63())
	}
}

// thresholds returns query timestamps exercising each breakpoint of the s->g
// profile plus the extremes.
func thresholds(tt *timetable.Timetable, s timetable.StopID) []timetable.Time {
	ts := []timetable.Time{0, tt.MaxTime() + 1}
	for _, ci := range tt.Outgoing(s) {
		d := tt.Connection(ci).Dep
		ts = append(ts, d-1, d, d+1)
	}
	return ts
}

// TestLabelsMatchCSA is the main correctness property: on random timetables
// and orders, every EA/LD/SD label query matches the Connection Scan oracle
// for every stop pair and profile breakpoint. This machine-checks the cover
// property of Build and (via the unified variants) Theorem 3.1.1.
func TestLabelsMatchCSA(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for iter := 0; iter < 12; iter++ {
		tt := randomTimetable(rng, 2+rng.Intn(14), rng.Intn(130))
		ord := randomOrder(rng, tt, iter)
		l := Build(tt, ord)
		if err := l.Validate(); err != nil {
			t.Fatalf("iter %d: Validate: %v", iter, err)
		}
		al := l.Clone().Augment()
		if err := al.Validate(); err != nil {
			t.Fatalf("iter %d: Validate augmented: %v", iter, err)
		}
		n := timetable.StopID(tt.NumStops())
		for s := timetable.StopID(0); s < n; s++ {
			ths := thresholds(tt, s)
			for g := timetable.StopID(0); g < n; g++ {
				if s == g {
					continue
				}
				for _, th := range ths {
					wantEA := csa.EarliestArrival(tt, s, g, th)
					if got := l.EarliestArrival(s, g, th); got != wantEA {
						t.Fatalf("iter %d: EA(%d,%d,%v) = %v, want %v", iter, s, g, th, got, wantEA)
					}
					if got := al.EarliestArrivalUnified(s, g, th); got != wantEA {
						t.Fatalf("iter %d: unified EA(%d,%d,%v) = %v, want %v", iter, s, g, th, got, wantEA)
					}
					wantLD := csa.LatestDeparture(tt, s, g, th)
					if got := l.LatestDeparture(s, g, th); got != wantLD {
						t.Fatalf("iter %d: LD(%d,%d,%v) = %v, want %v", iter, s, g, th, got, wantLD)
					}
					if got := al.LatestDepartureUnified(s, g, th); got != wantLD {
						t.Fatalf("iter %d: unified LD(%d,%d,%v) = %v, want %v", iter, s, g, th, got, wantLD)
					}
				}
				// SD over a few windows.
				for i := 0; i+1 < len(ths); i += 2 {
					t0, t1 := ths[i], ths[len(ths)-1-i]
					if t0 > t1 {
						t0, t1 = t1, t0
					}
					wantSD := csa.ShortestDuration(tt, s, g, t0, t1)
					if got := l.ShortestDuration(s, g, t0, t1); got != wantSD {
						t.Fatalf("iter %d: SD(%d,%d,%v,%v) = %v, want %v", iter, s, g, t0, t1, got, wantSD)
					}
					if got := al.ShortestDurationUnified(s, g, t0, t1); got != wantSD {
						t.Fatalf("iter %d: unified SD(%d,%d,%v,%v) = %v, want %v", iter, s, g, t0, t1, got, wantSD)
					}
				}
			}
		}
	}
}

// TestDummyFraction checks the paper's claim that dummy tuples are a small
// fraction of all tuples on a realistic (non-degenerate) instance.
func TestDummyFraction(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	tt := randomTimetable(rng, 40, 2000)
	l := Build(tt, order.ByDegree(tt)).Augment()
	frac := float64(l.NumDummies()) / float64(l.NumTuples())
	if frac <= 0 || frac >= 0.5 {
		t.Errorf("dummy fraction = %.3f, want in (0, 0.5)", frac)
	}
}

func TestStatsAccessors(t *testing.T) {
	l := buildPaperLabels(t)
	if l.NumStops() != 7 {
		t.Errorf("NumStops = %d", l.NumStops())
	}
	// 16 real tuples per Table 1 (8 out + 8 in).
	if l.NumTuples() != 16 {
		t.Errorf("NumTuples = %d, want 16", l.NumTuples())
	}
	if l.NumDummies() != 0 {
		t.Errorf("NumDummies = %d before Augment", l.NumDummies())
	}
	if l.TuplesPerStop() != 16/7 {
		t.Errorf("TuplesPerStop = %d", l.TuplesPerStop())
	}
	l.Augment()
	if l.NumDummies() != 18 { // 9 dummy timestamps, each in both labels
		t.Errorf("NumDummies = %d after Augment, want 18", l.NumDummies())
	}
}

// TestPivotAndTrip spot-checks the reconstruction metadata on the paper
// example: the journey 5 -> 0 rides trip 1 only (no transfer), while
// 0 -> 6 requires staying on trip 1 (no transfer either, boarding at 0).
func TestPivotAndTrip(t *testing.T) {
	l := buildPaperLabels(t)
	var t50 *Tuple
	for i := range l.Out[5] {
		if l.Out[5][i].Hub == 0 {
			t50 = &l.Out[5][i]
		}
	}
	if t50 == nil {
		t.Fatal("no 5->0 tuple")
	}
	if t50.Trip != 1 || t50.Pivot != timetable.NoStop {
		t.Errorf("5->0 tuple metadata = trip %d pivot %d, want trip 1, no pivot", t50.Trip, t50.Pivot)
	}
}

// TestBuildDeterminism ensures Build is reproducible for a fixed order.
func TestBuildDeterminism(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	tt := randomTimetable(rng, 20, 300)
	ord := order.ByDegree(tt)
	a, b := Build(tt, ord), Build(tt, ord)
	if !reflect.DeepEqual(a.In, b.In) || !reflect.DeepEqual(a.Out, b.Out) {
		t.Error("Build not deterministic")
	}
}

func TestEmptyTimetable(t *testing.T) {
	var b timetable.Builder
	b.AddStops(3)
	tt := b.MustBuild()
	l := Build(tt, order.ByDegree(tt))
	if l.NumTuples() != 0 {
		t.Errorf("labels on connection-free timetable: %d tuples", l.NumTuples())
	}
	l.Augment()
	if l.NumTuples() != 0 {
		t.Errorf("dummies on connection-free timetable: %d tuples", l.NumTuples())
	}
	if got := l.EarliestArrival(0, 1, 0); got != timetable.Infinity {
		t.Errorf("EA on empty = %v", got)
	}
	if got := l.LatestDeparture(0, 1, 86400); got != timetable.NegInfinity {
		t.Errorf("LD on empty = %v", got)
	}
}
