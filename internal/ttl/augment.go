package ttl

import (
	"sort"

	"ptldb/internal/timetable"
)

// Augment adds the PTLDB dummy tuples of paper Section 3.1 in place and
// returns l. Augment is idempotent.
//
// For every stop v, a dummy tuple ⟨v, t, t, −1, −1⟩ is appended to both
// L_out(v) and L_in(v) for every distinct timestamp t in:
//
//   - arrivals at v recorded in other stops' out-labels (tuples with
//     hub = v in any L_out(u)),
//   - departures from v recorded in other stops' in-labels (tuples with
//     hub = v in any L_in(u)), and
//   - arrivals at v in v's own in-label.
//
// This is the rule that reproduces Table 1 of the paper exactly; it folds the
// three TTL query cases (hub = g, hub = s, and the proper join) into the
// single join of the paper's Code 1: a tuple l1 ∈ L_out(s) with hub = g joins
// the dummy ⟨g, l1.t_a, l1.t_a⟩ in L_in(g), and a tuple l2 ∈ L_in(g) with
// hub = s joins the dummy ⟨s, l2.t_d, l2.t_d⟩ in L_out(s).
func (l *Labels) Augment() *Labels {
	if l.Augmented {
		return l
	}
	n := len(l.In)
	times := make([]map[timetable.Time]struct{}, n)
	add := func(v timetable.StopID, t timetable.Time) {
		if times[v] == nil {
			times[v] = make(map[timetable.Time]struct{})
		}
		times[v][t] = struct{}{}
	}
	for u := 0; u < n; u++ {
		for _, x := range l.Out[u] {
			add(x.Hub, x.Arr)
		}
		for _, y := range l.In[u] {
			add(y.Hub, y.Dep)
			add(timetable.StopID(u), y.Arr)
		}
	}
	for v := 0; v < n; v++ {
		if times[v] == nil {
			continue
		}
		ts := make([]timetable.Time, 0, len(times[v]))
		for t := range times[v] {
			ts = append(ts, t)
		}
		sort.Slice(ts, func(i, j int) bool { return ts[i] < ts[j] })
		for _, t := range ts {
			d := Tuple{Hub: timetable.StopID(v), Dep: t, Arr: t, Pivot: timetable.NoStop, Trip: timetable.NoTrip}
			l.Out[v] = append(l.Out[v], d)
			l.In[v] = append(l.In[v], d)
		}
		sortLabel(l.Out[v])
		sortLabel(l.In[v])
	}
	l.Augmented = true
	return l
}

// EarliestArrivalUnified answers EA(s, g, t) using only the single-join form
// of the paper's Code 1, which is what the database executes. It requires
// augmented labels; for s == g it returns the earliest dummy timestamp >= t
// at s (the paper's EA(1, 1, 324) = 324 convention), which may exceed t.
func (l *Labels) EarliestArrivalUnified(s, g timetable.StopID, t timetable.Time) timetable.Time {
	best := timetable.Infinity
	joinLabels(l.Out[s], l.In[g], func(xs, ys []Tuple) {
		minArr := timetable.Infinity
		for _, x := range xs {
			if x.Dep >= t && x.Arr < minArr {
				minArr = x.Arr
			}
		}
		if minArr == timetable.Infinity {
			return
		}
		for _, y := range ys {
			if y.Dep >= minArr && y.Arr < best {
				best = y.Arr
			}
		}
	})
	return best
}

// LatestDepartureUnified answers LD(s, g, t) using only the single-join form.
func (l *Labels) LatestDepartureUnified(s, g timetable.StopID, t timetable.Time) timetable.Time {
	best := timetable.NegInfinity
	joinLabels(l.Out[s], l.In[g], func(xs, ys []Tuple) {
		maxDep := timetable.NegInfinity
		for _, y := range ys {
			if y.Arr <= t && y.Dep > maxDep {
				maxDep = y.Dep
			}
		}
		if maxDep == timetable.NegInfinity {
			return
		}
		for _, x := range xs {
			if x.Arr <= maxDep && x.Dep > best {
				best = x.Dep
			}
		}
	})
	return best
}

// ShortestDurationUnified answers SD(s, g, t, tEnd) using only the
// single-join form.
func (l *Labels) ShortestDurationUnified(s, g timetable.StopID, t, tEnd timetable.Time) timetable.Time {
	best := timetable.Infinity
	joinLabels(l.Out[s], l.In[g], func(xs, ys []Tuple) {
		for _, x := range xs {
			if x.Dep < t {
				continue
			}
			for _, y := range ys {
				if x.Arr <= y.Dep && y.Arr <= tEnd && y.Arr-x.Dep < best {
					best = y.Arr - x.Dep
				}
			}
		}
	})
	return best
}

// Clone returns a deep copy of the labels.
func (l *Labels) Clone() *Labels {
	c := &Labels{
		In:        make([][]Tuple, len(l.In)),
		Out:       make([][]Tuple, len(l.Out)),
		Augmented: l.Augmented,
	}
	if l.Ranks != nil {
		c.Ranks = append([]int32(nil), l.Ranks...)
	}
	for v := range l.In {
		c.In[v] = append([]Tuple(nil), l.In[v]...)
		c.Out[v] = append([]Tuple(nil), l.Out[v]...)
	}
	return c
}
