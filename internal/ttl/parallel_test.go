package ttl

import (
	"fmt"
	"math/rand"
	"reflect"
	"runtime"
	"testing"

	"ptldb/internal/csa"
	"ptldb/internal/order"
	"ptldb/internal/timetable"
)

// workerCounts are the BuildWorkers values the determinism tests sweep,
// including a count above GOMAXPROCS and a count that leaves the last wave
// ragged.
func workerCounts() []int {
	counts := []int{1, 2, 7}
	if g := runtime.GOMAXPROCS(0); g != 1 && g != 2 && g != 7 {
		counts = append(counts, g)
	}
	return counts
}

// TestBuildParallelByteIdentical is the canonicality test of the wave build:
// for every worker count the labels must equal the serial build's exactly —
// not merely cover-equivalent — including the pivot/trip reconstruction
// metadata and the per-stop array order.
func TestBuildParallelByteIdentical(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	for iter := 0; iter < 10; iter++ {
		tt := randomTimetable(rng, 2+rng.Intn(30), rng.Intn(500))
		ord := randomOrder(rng, tt, iter)
		want := buildSerial(tt, ord)
		for _, workers := range workerCounts() {
			got := BuildParallel(tt, ord, workers)
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("iter %d: BuildParallel(workers=%d) differs from serial build", iter, workers)
			}
		}
	}
	// The paper example, where the expected labels are known exactly.
	tt := timetable.PaperExample()
	ord := order.Identity(7)
	want := buildSerial(tt, ord)
	for _, workers := range workerCounts() {
		if got := BuildParallel(tt, ord, workers); !reflect.DeepEqual(got, want) {
			t.Fatalf("paper example: BuildParallel(workers=%d) differs from serial build", workers)
		}
	}
}

// TestBuildParallelMatchesCSA runs the parallel build on randomized
// timetables and checks EA/LD answers against the Connection Scan oracle —
// the differential guard that the wave commit preserves correctness, not
// just serial equivalence.
func TestBuildParallelMatchesCSA(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	for iter := 0; iter < 6; iter++ {
		tt := randomTimetable(rng, 2+rng.Intn(12), rng.Intn(120))
		ord := randomOrder(rng, tt, iter)
		l := BuildParallel(tt, ord, 3)
		if err := l.Validate(); err != nil {
			t.Fatalf("iter %d: Validate: %v", iter, err)
		}
		n := timetable.StopID(tt.NumStops())
		for s := timetable.StopID(0); s < n; s++ {
			ths := thresholds(tt, s)
			for g := timetable.StopID(0); g < n; g++ {
				if s == g {
					continue
				}
				for _, th := range ths {
					if got, want := l.EarliestArrival(s, g, th), csa.EarliestArrival(tt, s, g, th); got != want {
						t.Fatalf("iter %d: EA(%d,%d,%v) = %v, want %v", iter, s, g, th, got, want)
					}
					if got, want := l.LatestDeparture(s, g, th), csa.LatestDeparture(tt, s, g, th); got != want {
						t.Fatalf("iter %d: LD(%d,%d,%v) = %v, want %v", iter, s, g, th, got, want)
					}
				}
			}
		}
	}
}

// TestBuildParallelDegenerate exercises the wave machinery on inputs smaller
// than a batch: an empty timetable and a two-stop network with more workers
// than hubs.
func TestBuildParallelDegenerate(t *testing.T) {
	var b timetable.Builder
	b.AddStops(3)
	empty := b.MustBuild()
	for _, workers := range []int{2, 16} {
		if l := BuildParallel(empty, order.ByDegree(empty), workers); l.NumTuples() != 0 {
			t.Errorf("workers=%d: %d tuples on connection-free timetable", workers, l.NumTuples())
		}
	}

	var b2 timetable.Builder
	b2.AddStops(2)
	b2.AddConnection(0, 1, 100, 200, 1)
	tiny := b2.MustBuild()
	want := buildSerial(tiny, order.ByDegree(tiny))
	for _, workers := range []int{2, 16} {
		if got := BuildParallel(tiny, order.ByDegree(tiny), workers); !reflect.DeepEqual(got, want) {
			t.Errorf("workers=%d: tiny timetable labels differ from serial", workers)
		}
	}

	// workers <= 0 resolves to GOMAXPROCS and must still be exact.
	rng := rand.New(rand.NewSource(9))
	tt := randomTimetable(rng, 12, 160)
	ord := order.ByNeighborDegree(tt)
	if got := BuildParallel(tt, ord, 0); !reflect.DeepEqual(got, buildSerial(tt, ord)) {
		t.Error("BuildParallel(workers=0) differs from serial build")
	}
}

func BenchmarkBuildParallel(b *testing.B) {
	rng := rand.New(rand.NewSource(17))
	tt := randomTimetable(rng, 300, 30000)
	ord := order.ByNeighborDegree(tt)
	for _, workers := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				BuildParallel(tt, ord, workers)
			}
		})
	}
}
