module ptldb

go 1.22
