// Command ptldb-bench regenerates the tables and figures of the PTLDB
// paper's evaluation (Section 4) on synthetic datasets.
//
// Usage:
//
//	ptldb-bench [-scale 0.05] [-queries 200] [-cities Austin,Berlin]
//	            [-exp table7,fig2|all] [-cache DIR] [-seed N] [-o FILE]
//
// At -scale 1.0 the datasets match the paper's published sizes; smaller
// scales preserve average degree and temporal structure. Built databases are
// cached in -cache and reused across runs.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"runtime/pprof"
	"strconv"
	"strings"
	"time"

	"ptldb/internal/bench"
	"ptldb/internal/obs"
)

func main() {
	var (
		scale      = flag.Float64("scale", 0.05, "dataset scale relative to the paper (0 < scale <= 1)")
		queries    = flag.Int("queries", 200, "queries per experiment (paper: 1000)")
		cities     = flag.String("cities", "", "comma-separated dataset names (default: all 11)")
		exps       = flag.String("exp", "all", "comma-separated experiment ids or 'all': "+strings.Join(bench.ExperimentIDs, ","))
		cache      = flag.String("cache", "", "database cache directory (default: $TMPDIR/ptldb-bench-cache)")
		seed       = flag.Int64("seed", 1, "workload and generator seed")
		parallel   = flag.Int("parallel", 1, "goroutines issuing queries concurrently (sim device time is divided by N)")
		workers    = flag.Int("build-workers", 0, "preprocessing parallelism for database builds (0 = GOMAXPROCS)")
		fused      = flag.String("fused", "on", "fused label-query execution: on or off (ablation)")
		segments   = flag.String("segments", "on", "columnar label segments on the read path: on or off (ablation)")
		vcache     = flag.String("vcache", "on", "resident vector cache over the segments: on or off (ablation)")
		vcBytes    = flag.Int64("vcache-bytes", 0, "vector-cache budget in bytes (0 = default)")
		svClients  = flag.String("serve-clients", "", "comma-separated client counts for -exp serve (default 1,4,16,64)")
		svRate     = flag.Float64("serve-rate", 0, "per-client request rate for -exp serve (default 50/s)")
		svDuration = flag.Duration("serve-duration", 0, "offered-load window per serve cell (default 2s)")
		svInflight = flag.Int("serve-inflight", 0, "server admission cap for -exp serve (default 64)")
		cpuProf    = flag.String("cpuprofile", "", "write a CPU profile to this file")
		memProf    = flag.String("memprofile", "", "write a heap profile to this file at exit")
		out        = flag.String("o", "", "write the report to a file instead of stdout")
		obsOut     = flag.String("obs-out", "", "write per-code query observability totals (JSON) to this file")
		quiet      = flag.Bool("q", false, "suppress progress output")
	)
	flag.Parse()

	if *cpuProf != "" {
		f, err := os.Create(*cpuProf)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			fatal(err)
		}
		defer pprof.StopCPUProfile()
	}
	if *memProf != "" {
		defer func() {
			f, err := os.Create(*memProf)
			if err != nil {
				fatal(err)
			}
			defer f.Close()
			runtime.GC()
			if err := pprof.WriteHeapProfile(f); err != nil {
				fatal(err)
			}
		}()
	}

	cfg := bench.Config{
		Scale:        *scale,
		Queries:      *queries,
		Seed:         *seed,
		CacheDir:     *cache,
		Parallel:     *parallel,
		BuildWorkers: *workers,
	}
	switch *fused {
	case "on":
	case "off":
		cfg.FusedOff = true
	default:
		fatal(fmt.Errorf("-fused must be on or off, got %q", *fused))
	}
	switch *segments {
	case "on":
	case "off":
		cfg.SegmentsOff = true
	default:
		fatal(fmt.Errorf("-segments must be on or off, got %q", *segments))
	}
	switch *vcache {
	case "on":
	case "off":
		cfg.VCacheOff = true
	default:
		fatal(fmt.Errorf("-vcache must be on or off, got %q", *vcache))
	}
	cfg.VCacheBytes = *vcBytes
	if *svClients != "" {
		for _, c := range strings.Split(*svClients, ",") {
			n, err := strconv.Atoi(strings.TrimSpace(c))
			if err != nil || n < 1 {
				fatal(fmt.Errorf("-serve-clients: bad count %q", c))
			}
			cfg.ServeClients = append(cfg.ServeClients, n)
		}
	}
	cfg.ServeRate = *svRate
	cfg.ServeDuration = *svDuration
	cfg.ServeMaxInFlight = *svInflight
	var agg *obs.Aggregator
	if *obsOut != "" {
		agg = obs.NewAggregator()
		cfg.TraceHook = agg.Observe
	}
	if *cities != "" {
		for _, c := range strings.Split(*cities, ",") {
			cfg.Cities = append(cfg.Cities, strings.TrimSpace(c))
		}
	}
	w, err := bench.NewWorkspace(cfg)
	if err != nil {
		fatal(err)
	}
	if !*quiet {
		w.Progress = func(format string, args ...any) {
			fmt.Fprintf(os.Stderr, "# "+format+"\n", args...)
		}
	}

	ids := bench.ExperimentIDs
	if *exps != "all" {
		ids = nil
		for _, e := range strings.Split(*exps, ",") {
			ids = append(ids, strings.TrimSpace(e))
		}
	}

	var sink io.Writer = os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		sink = f
	}

	if _, err := fmt.Fprintf(sink, "# PTLDB evaluation — scale %.3g, %d queries/experiment, seed %d\n\n",
		w.Config().Scale, w.Config().Queries, w.Config().Seed); err != nil {
		fatal(err)
	}
	start := time.Now()
	for _, id := range ids {
		t0 := time.Now()
		tbl, err := w.Run(id)
		if err != nil {
			fatal(fmt.Errorf("%s: %w", id, err))
		}
		if err := tbl.Render(sink); err != nil {
			fatal(err)
		}
		if !*quiet {
			fmt.Fprintf(os.Stderr, "# %s done in %v\n", id, time.Since(t0).Round(time.Millisecond))
		}
	}
	if !*quiet {
		fmt.Fprintf(os.Stderr, "# total %v\n", time.Since(start).Round(time.Millisecond))
	}
	if agg != nil {
		blob, err := json.MarshalIndent(agg.Totals(), "", "  ")
		if err != nil {
			fatal(err)
		}
		if err := os.WriteFile(*obsOut, append(blob, '\n'), 0o644); err != nil {
			fatal(err)
		}
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "ptldb-bench:", err)
	os.Exit(1)
}
