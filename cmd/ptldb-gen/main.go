// Command ptldb-gen emits a synthetic transit network as a GTFS directory,
// modelled on one of the paper's eleven evaluation datasets.
//
// Usage:
//
//	ptldb-gen -city Berlin -scale 0.1 -seed 1 -o /tmp/berlin-gtfs
package main

import (
	"flag"
	"fmt"
	"os"

	"ptldb"
	"ptldb/internal/gtfs"
)

func main() {
	var (
		city  = flag.String("city", "Austin", "city profile (see ptldb-build -list)")
		scale = flag.Float64("scale", 0.05, "dataset scale relative to the paper")
		seed  = flag.Int64("seed", 1, "generator seed")
		out   = flag.String("o", "", "output GTFS directory (required)")
	)
	flag.Parse()
	if *out == "" {
		fmt.Fprintln(os.Stderr, "ptldb-gen: -o is required")
		os.Exit(1)
	}
	tt, err := ptldb.GenerateCity(*city, *scale, *seed)
	if err != nil {
		fmt.Fprintln(os.Stderr, "ptldb-gen:", err)
		os.Exit(1)
	}
	if err := gtfs.FromTimetable(tt).Write(*out); err != nil {
		fmt.Fprintln(os.Stderr, "ptldb-gen:", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "ptldb-gen: wrote %s: %d stops, %d connections, %d trips\n",
		*out, tt.NumStops(), tt.NumConnections(), tt.NumTrips())
}
