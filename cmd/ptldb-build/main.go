// Command ptldb-build preprocesses a transit network into a PTLDB database
// directory: TTL labels, dummy augmentation and the lout/lin tables, plus
// optional kNN/one-to-many target sets.
//
// Usage:
//
//	ptldb-build -db DIR (-gtfs FEEDDIR | -city NAME [-scale F] [-seed N])
//	            [-targets 0.01:16,0.1:4] [-bucket 3600] [-order neighbor-degree]
//
// The -targets flag registers random target sets as density:kmax pairs.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"math/rand"
	"os"
	"strconv"
	"strings"

	"ptldb"
)

func main() {
	var (
		dbDir   = flag.String("db", "", "output database directory (required)")
		gtfsDir = flag.String("gtfs", "", "GTFS feed directory to load")
		city    = flag.String("city", "", "synthetic city profile name (see -list)")
		scale   = flag.Float64("scale", 0.05, "synthetic dataset scale")
		seed    = flag.Int64("seed", 1, "generator seed")
		targets = flag.String("targets", "", "comma-separated density:kmax target sets, e.g. 0.01:16")
		bucket  = flag.Int("bucket", 3600, "knn/otm bucket width in seconds")
		ordFlag = flag.String("order", "neighbor-degree", "vertex ordering: neighbor-degree, degree, random")
		workers = flag.Int("workers", 0, "preprocessing parallelism (0 = GOMAXPROCS); output is identical for every value")
		segs    = flag.String("segments", "on", "read label tables through columnar segments during this build session: on or off (segment files are written either way)")
		vcache  = flag.String("vcache", "on", "resident vector cache during this build session: on or off")
		vcBytes = flag.Int64("vcache-bytes", 0, "vector-cache budget in bytes (0 = default)")
		obsOut  = flag.String("obs-out", "", "write the build's observability snapshot (JSON) to this file")
		list    = flag.Bool("list", false, "list synthetic city profiles and exit")
	)
	flag.Parse()

	if *list {
		fmt.Println("profile            |V|      |E|        avg-degree")
		for _, p := range ptldb.Profiles() {
			fmt.Printf("%-18s %-8d %-10d %d\n", p.Name, p.Stops, p.Connections, p.AvgDegree())
		}
		return
	}
	if *dbDir == "" {
		fatal(fmt.Errorf("-db is required"))
	}

	var tt *ptldb.Network
	var err error
	switch {
	case *gtfsDir != "":
		var skipped int
		tt, skipped, err = ptldb.LoadGTFS(*gtfsDir)
		if err != nil {
			fatal(err)
		}
		if skipped > 0 {
			fmt.Fprintf(os.Stderr, "ptldb-build: skipped %d degenerate connections\n", skipped)
		}
	case *city != "":
		tt, err = ptldb.GenerateCity(*city, *scale, *seed)
		if err != nil {
			fatal(err)
		}
	default:
		fatal(fmt.Errorf("one of -gtfs or -city is required"))
	}
	fmt.Fprintf(os.Stderr, "ptldb-build: network: %d stops, %d connections, %d trips, span %v-%v\n",
		tt.NumStops(), tt.NumConnections(), tt.NumTrips(), tt.MinTime(), tt.MaxTime())

	if *segs != "on" && *segs != "off" {
		fatal(fmt.Errorf("-segments must be on or off, got %q", *segs))
	}
	if *vcache != "on" && *vcache != "off" {
		fatal(fmt.Errorf("-vcache must be on or off, got %q", *vcache))
	}
	db, stats, err := ptldb.CreateWithStats(*dbDir, tt, ptldb.Config{
		Device:             "ram",
		BucketSeconds:      int32(*bucket),
		Ordering:           *ordFlag,
		Seed:               *seed,
		BuildWorkers:       *workers,
		DisableSegments:    *segs == "off",
		DisableVectorCache: *vcache == "off",
		VectorCacheBytes:   *vcBytes,
	})
	if err != nil {
		fatal(err)
	}
	defer db.Close()
	fmt.Fprintf(os.Stderr,
		"ptldb-build: labels: %d tuples (%d/stop) + %d dummies; order %v, build %v, load %v\n",
		stats.LabelTuples, stats.TuplesPerStop, stats.DummyTuples,
		stats.OrderTime.Round(1e6), stats.LabelTime.Round(1e6), stats.LoadTime.Round(1e6))

	if *targets != "" {
		rng := rand.New(rand.NewSource(*seed))
		for _, spec := range strings.Split(*targets, ",") {
			parts := strings.SplitN(strings.TrimSpace(spec), ":", 2)
			if len(parts) != 2 {
				fatal(fmt.Errorf("bad -targets entry %q (want density:kmax)", spec))
			}
			d, err := strconv.ParseFloat(parts[0], 64)
			if err != nil || d <= 0 || d > 1 {
				fatal(fmt.Errorf("bad density in %q", spec))
			}
			kmax, err := strconv.Atoi(parts[1])
			if err != nil || kmax < 1 {
				fatal(fmt.Errorf("bad kmax in %q", spec))
			}
			count := int(d * float64(tt.NumStops()))
			if count < 1 {
				count = 1
			}
			perm := rng.Perm(tt.NumStops())
			set := make([]ptldb.StopID, count)
			for i := range set {
				set[i] = ptldb.StopID(perm[i])
			}
			name := fmt.Sprintf("d%d_k%d", int(d*10000), kmax)
			if err := db.AddTargetSet(name, set, kmax); err != nil {
				fatal(err)
			}
			fmt.Fprintf(os.Stderr, "ptldb-build: target set %s: %d targets, kmax %d\n", name, count, kmax)
		}
	}

	st, err := db.Stats()
	if err != nil {
		fatal(err)
	}
	fmt.Fprintf(os.Stderr, "ptldb-build: database %s: %.1f MiB\n", *dbDir, float64(st.SizeOnDisk)/(1<<20))

	if *obsOut != "" {
		blob, err := json.MarshalIndent(db.Snapshot(), "", "  ")
		if err != nil {
			fatal(err)
		}
		if err := os.WriteFile(*obsOut, append(blob, '\n'), 0o644); err != nil {
			fatal(err)
		}
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "ptldb-build:", err)
	os.Exit(1)
}
