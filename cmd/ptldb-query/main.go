// Command ptldb-query answers route-planning queries against a built PTLDB
// database, either by opening the database directory or by talking to a
// running ptldb-serve instance.
//
// Usage:
//
//	ptldb-query -db DIR [-device ssd] ea  SRC DST TIME
//	ptldb-query -db DIR ld  SRC DST TIME
//	ptldb-query -db DIR sd  SRC DST FROM TO
//	ptldb-query -db DIR eaknn SET SRC TIME K
//	ptldb-query -db DIR ldknn SET SRC TIME K
//	ptldb-query -db DIR eaotm SET SRC TIME
//	ptldb-query -db DIR ldotm SET SRC TIME
//	ptldb-query -db DIR sql 'SELECT ...'
//	ptldb-query -db DIR explain 'SELECT ...'
//	ptldb-query -db DIR plan NAME     (NAME from 'ptldb-query -db DIR plan')
//	ptldb-query -db DIR sets
//
// With -url http://HOST:PORT instead of -db, the query commands (plus plan
// and -obs) run against the server's HTTP API with identical output; the
// sql, explain and sets commands need the open store and refuse -url.
// Against a multi-tenant server (ptldb-serve -tenants), add -tenant CITY to
// pick the city; paths gain the /t/{city} prefix.
//
// TIME accepts either seconds after midnight or HH:MM:SS.
//
// -slow DURATION logs every query slower than the threshold to stderr;
// -obs prints the observability snapshot (JSON) to stderr on exit.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"ptldb"
	"ptldb/internal/gtfs"
	"ptldb/internal/serve"
	"ptldb/internal/timetable"
)

// backend is the query surface shared by the local path (*ptldb.DB) and the
// client path (*serve.Client): both answer the seven query types with the
// same signatures, so the command dispatch and output formatting below are
// written once.
type backend interface {
	EarliestArrival(s, g ptldb.StopID, t ptldb.Time) (ptldb.Time, bool, error)
	LatestDeparture(s, g ptldb.StopID, t ptldb.Time) (ptldb.Time, bool, error)
	ShortestDuration(s, g ptldb.StopID, t, tEnd ptldb.Time) (ptldb.Time, bool, error)
	EAKNN(set string, q ptldb.StopID, t ptldb.Time, k int) ([]ptldb.Result, error)
	LDKNN(set string, q ptldb.StopID, t ptldb.Time, k int) ([]ptldb.Result, error)
	EAOTM(set string, q ptldb.StopID, t ptldb.Time) ([]ptldb.Result, error)
	LDOTM(set string, q ptldb.StopID, t ptldb.Time) ([]ptldb.Result, error)
	ExplainPrepared(name string) (string, error)
}

func main() {
	var (
		dbDir    = flag.String("db", "", "database directory (required unless -url)")
		urlFlag  = flag.String("url", "", "ptldb-serve base URL (e.g. http://127.0.0.1:8080); replaces -db")
		tenantF  = flag.String("tenant", "", "city key on a multi-tenant server (requires -url)")
		device   = flag.String("device", "ssd", "simulated device: hdd, ssd, ram")
		segments = flag.String("segments", "on", "columnar label segments on the read path: on or off")
		vcache   = flag.String("vcache", "on", "resident vector cache over the segments: on or off")
		vcBytes  = flag.Int64("vcache-bytes", 0, "vector-cache budget in bytes (0 = default)")
		slow     = flag.Duration("slow", 0, "log queries slower than this to stderr (0 = off)")
		obsDump  = flag.Bool("obs", false, "print the observability snapshot (JSON) to stderr on exit")
	)
	flag.Parse()
	if (*dbDir == "") == (*urlFlag == "") || flag.NArg() == 0 {
		fatal(fmt.Errorf("usage: ptldb-query {-db DIR | -url URL} CMD ARGS... (see source header)"))
	}
	if *segments != "on" && *segments != "off" {
		fatal(fmt.Errorf("-segments must be on or off, got %q", *segments))
	}
	if *vcache != "on" && *vcache != "off" {
		fatal(fmt.Errorf("-vcache must be on or off, got %q", *vcache))
	}
	if *tenantF != "" && *urlFlag == "" {
		fatal(fmt.Errorf("-tenant selects a city on a server; it requires -url"))
	}
	args := flag.Args()

	if *urlFlag != "" {
		client := &serve.Client{BaseURL: *urlFlag, Tenant: *tenantF}
		if *obsDump {
			defer func() {
				snap, err := client.Obs()
				check(err)
				blob, err := json.MarshalIndent(snap, "", "  ")
				check(err)
				fmt.Fprintln(os.Stderr, string(blob))
			}()
		}
		switch args[0] {
		case "sql", "explain", "sets":
			fatal(fmt.Errorf("%s needs the open store; use -db instead of -url", args[0]))
		case "plan":
			if len(args) == 1 {
				names, err := client.ExplainNames()
				check(err)
				for _, name := range names {
					fmt.Println(name)
				}
				return
			}
		}
		run(client, args)
		return
	}

	db, err := ptldb.Open(*dbDir, ptldb.Config{
		Device: *device, SlowQueryThreshold: *slow, DisableSegments: *segments == "off",
		DisableVectorCache: *vcache == "off", VectorCacheBytes: *vcBytes,
	})
	if err != nil {
		fatal(err)
	}
	defer db.Close()
	if *obsDump {
		defer func() {
			blob, err := json.MarshalIndent(db.Snapshot(), "", "  ")
			check(err)
			fmt.Fprintln(os.Stderr, string(blob))
		}()
	}

	switch args[0] {
	case "sql":
		need(args, 2)
		trimmed := strings.ToUpper(strings.TrimSpace(args[1]))
		if !strings.HasPrefix(trimmed, "SELECT") && !strings.HasPrefix(trimmed, "WITH") {
			n, err := db.Store().DB.Exec(args[1])
			check(err)
			fmt.Printf("ok (%d rows affected)\n", n)
			return
		}
		rel, err := db.Store().Raw(args[1])
		check(err)
		for _, c := range rel.Columns() {
			fmt.Printf("%s\t", c)
		}
		fmt.Println()
		for _, row := range rel.Rows {
			for _, v := range row {
				fmt.Printf("%s\t", v.String())
			}
			fmt.Println()
		}
		fmt.Printf("(%d rows)\n", len(rel.Rows))
	case "explain":
		need(args, 2)
		rel, trace, err := db.Store().RawTraced(args[1])
		check(err)
		for _, line := range trace {
			fmt.Println("  ->", line)
		}
		fmt.Printf("(%d rows)\n", len(rel.Rows))
	case "sets":
		for name, ts := range db.TargetSets() {
			fmt.Printf("%s: %d targets, kmax %d\n", name, len(ts.Targets), ts.KMax)
		}
	case "plan":
		if len(args) == 1 {
			for _, name := range db.ExplainNames() {
				fmt.Println(name)
			}
			return
		}
		run(db, args)
	default:
		run(db, args)
	}
}

// run dispatches the query commands shared by the local and -url paths.
func run(b backend, args []string) {
	switch args[0] {
	case "ea", "ld":
		need(args, 4)
		s, g := stop(args[1]), stop(args[2])
		t := when(args[3])
		var v ptldb.Time
		var ok bool
		var err error
		if args[0] == "ea" {
			v, ok, err = b.EarliestArrival(s, g, t)
		} else {
			v, ok, err = b.LatestDeparture(s, g, t)
		}
		check(err)
		if !ok {
			fmt.Println("no journey")
			return
		}
		fmt.Printf("%s (%d)\n", gtfs.FormatTime(v), v)
	case "sd":
		need(args, 5)
		v, ok, err := b.ShortestDuration(stop(args[1]), stop(args[2]), when(args[3]), when(args[4]))
		check(err)
		if !ok {
			fmt.Println("no journey")
			return
		}
		fmt.Printf("%s (%d s)\n", gtfs.FormatTime(v), v)
	case "eaknn", "ldknn":
		need(args, 5)
		k, err := strconv.Atoi(args[4])
		check(err)
		var rs []ptldb.Result
		if args[0] == "eaknn" {
			rs, err = b.EAKNN(args[1], stop(args[2]), when(args[3]), k)
		} else {
			rs, err = b.LDKNN(args[1], stop(args[2]), when(args[3]), k)
		}
		check(err)
		printResults(rs)
	case "eaotm", "ldotm":
		need(args, 4)
		var rs []ptldb.Result
		var err error
		if args[0] == "eaotm" {
			rs, err = b.EAOTM(args[1], stop(args[2]), when(args[3]))
		} else {
			rs, err = b.LDOTM(args[1], stop(args[2]), when(args[3]))
		}
		check(err)
		printResults(rs)
	case "plan":
		need(args, 2)
		plan, err := b.ExplainPrepared(args[1])
		check(err)
		fmt.Print(plan)
	default:
		fatal(fmt.Errorf("unknown command %q", args[0]))
	}
}

func printResults(rs []ptldb.Result) {
	for _, r := range rs {
		fmt.Printf("stop %-6d %s (%d)\n", r.Stop, gtfs.FormatTime(r.When), r.When)
	}
	if len(rs) == 0 {
		fmt.Println("no results")
	}
}

func need(args []string, n int) {
	if len(args) != n {
		fatal(fmt.Errorf("%s takes %d arguments", args[0], n-1))
	}
}

func stop(s string) ptldb.StopID {
	v, err := strconv.Atoi(s)
	check(err)
	return ptldb.StopID(v)
}

func when(s string) ptldb.Time {
	if t, err := gtfs.ParseTime(s); err == nil {
		return t
	}
	v, err := strconv.Atoi(s)
	check(err)
	return timetable.Time(v)
}

func check(err error) {
	if err != nil {
		fatal(err)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "ptldb-query:", err)
	os.Exit(1)
}
