package main

import (
	"go/token"
	"strings"
	"testing"

	"ptldb/internal/analysis"
)

// TestEncodeFindingsGolden pins the -json output byte-for-byte: the field
// order (file, line, col, checker, message) is a documented contract for CI
// parsers, so a change to Finding's MarshalJSON must show up here.
func TestEncodeFindingsGolden(t *testing.T) {
	findings := []analysis.Finding{
		{
			Pos:     token.Position{Filename: "internal/sqldb/table.go", Line: 42, Column: 7},
			Checker: "allocheck",
			Message: "map literal allocates (hot path via LookupPKScratch)",
		},
		{
			Pos:     token.Position{Filename: "internal/sqldb/vcache/vcache.go", Line: 9, Column: 2},
			Checker: "lockordercheck",
			Message: "lock-order cycle among a ↔ b: opposite acquisition orders can deadlock",
		},
	}
	const want = `[
  {
    "file": "internal/sqldb/table.go",
    "line": 42,
    "col": 7,
    "checker": "allocheck",
    "message": "map literal allocates (hot path via LookupPKScratch)"
  },
  {
    "file": "internal/sqldb/vcache/vcache.go",
    "line": 9,
    "col": 2,
    "checker": "lockordercheck",
    "message": "lock-order cycle among a ↔ b: opposite acquisition orders can deadlock"
  }
]
`
	var b strings.Builder
	if err := encodeFindings(&b, findings); err != nil {
		t.Fatal(err)
	}
	if b.String() != want {
		t.Errorf("json output:\n%s\nwant:\n%s", b.String(), want)
	}
}

// TestEncodeFindingsEmpty pins the no-findings shape: an empty array, never
// null, so `jq length` and friends keep working on clean runs.
func TestEncodeFindingsEmpty(t *testing.T) {
	var b strings.Builder
	if err := encodeFindings(&b, nil); err != nil {
		t.Fatal(err)
	}
	if got := b.String(); got != "[]\n" {
		t.Errorf("empty output = %q, want %q", got, "[]\n")
	}
}
