// ptldb-analyze runs PTLDB's project-specific static-analysis suite (see
// internal/analysis and DESIGN.md §8) over module packages and exits non-zero
// if any checker reports a finding.
//
// Usage:
//
//	ptldb-analyze [-json] [-checkers name,name] [packages]
//
// Packages default to ./... relative to the current directory; patterns are
// directories relative to the module, with /... for recursion. -json emits
// the findings as a JSON array for CI consumption.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"ptldb/internal/analysis"
)

func main() {
	jsonOut := flag.Bool("json", false, "emit findings as a JSON array")
	names := flag.String("checkers", "",
		"comma-separated subset of checkers to run (default all: "+strings.Join(analysis.CheckerNames(), ",")+")")
	flag.Parse()

	if err := run(*jsonOut, *names, flag.Args()); err != nil {
		fmt.Fprintln(os.Stderr, "ptldb-analyze:", err)
		os.Exit(2)
	}
}

func run(jsonOut bool, names string, patterns []string) error {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	checkers, err := selectCheckers(names)
	if err != nil {
		return err
	}
	cwd, err := os.Getwd()
	if err != nil {
		return err
	}
	loader, err := analysis.NewLoader(cwd)
	if err != nil {
		return err
	}
	pkgs, err := loader.Load(cwd, patterns...)
	if err != nil {
		return err
	}
	findings := analysis.Run(pkgs, checkers)
	if jsonOut {
		if err := encodeFindings(os.Stdout, findings); err != nil {
			return err
		}
	} else {
		for _, f := range findings {
			fmt.Println(f)
		}
	}
	if len(findings) > 0 {
		if !jsonOut {
			fmt.Fprintf(os.Stderr, "ptldb-analyze: %d finding(s)\n", len(findings))
		}
		os.Exit(1)
	}
	return nil
}

// encodeFindings writes the findings as the -json output: an indented JSON
// array (never null — an empty run is []), one object per finding with the
// fixed field order file, line, col, checker, message. CI parsers and the
// golden test depend on that order staying stable.
func encodeFindings(w io.Writer, findings []analysis.Finding) error {
	if findings == nil {
		findings = []analysis.Finding{}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(findings)
}

// selectCheckers resolves the -checkers flag against the default suite.
func selectCheckers(names string) ([]analysis.Checker, error) {
	all := analysis.Checkers()
	if names == "" {
		return all, nil
	}
	byName := map[string]analysis.Checker{}
	for _, c := range all {
		byName[c.Name()] = c
	}
	var out []analysis.Checker
	for _, name := range strings.Split(names, ",") {
		name = strings.TrimSpace(name)
		c, ok := byName[name]
		if !ok {
			return nil, fmt.Errorf("unknown checker %q (have %s)", name, strings.Join(analysis.CheckerNames(), ", "))
		}
		out = append(out, c)
	}
	return out, nil
}
