// Command ptldb-serve exposes built PTLDB databases over HTTP: the seven
// query types of the paper plus the prepared-plan and observability
// endpoints, with per-request timeouts, bounded in-flight admission control
// and query-level request coalescing (see internal/serve and DESIGN.md §13).
//
// Usage:
//
//	ptldb-serve -db DIR [-addr 127.0.0.1:8080] [-device ssd]
//	            [-max-inflight 64] [-timeout 5s] [-drain 10s]
//	            [-coalesce on|off] [-slow DURATION] [-pool-pages N]
//	ptldb-serve -tenants DIR [-max-open 4] [shared flags as above]
//
// With -db, one database is served at the root paths. With -tenants, DIR's
// subdirectories (each a built database, the subdirectory name being the
// city key) are served from one process behind /t/{city}/... paths:
// databases open lazily on first request, at most -max-open stay open (LRU,
// in-flight queries pin theirs), and the -vcache-bytes and -pool-pages
// budgets are process-wide — each open tenant gets an equal share. See
// DESIGN.md §14.
//
// Endpoints (all GET, all JSON; prefix /t/{city} in -tenants mode):
//
//	/query/ea?from=S&to=G&t=T            earliest arrival
//	/query/ld?from=S&to=G&t=T            latest departure
//	/query/sd?from=S&to=G&start=T&end=T  shortest duration
//	/query/eaknn?set=N&from=S&t=T&k=K    EA k-nearest targets
//	/query/ldknn?set=N&from=S&t=T&k=K    LD k-nearest targets
//	/query/eaotm?set=N&from=S&t=T        EA one-to-many
//	/query/ldotm?set=N&from=S&t=T        LD one-to-many
//	/plan[?name=NAME]                    prepared plan(s)
//	/obs                                 observability snapshot
//	/healthz                             liveness (never prefixed)
//
// -tenants mode adds two unprefixed endpoints: /tenants (the city list with
// lifecycle counters) and /obs (the cross-tenant rollup).
//
// Time parameters accept seconds after midnight or HH:MM:SS. SIGINT/SIGTERM
// trigger a graceful drain: the listener closes, in-flight requests finish
// (up to -drain), then the database(s) are closed.
package main

import (
	"context"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"ptldb"
	"ptldb/internal/serve"
	"ptldb/internal/tenant"
)

func main() {
	var (
		dbDir     = flag.String("db", "", "database directory (this or -tenants required)")
		tenantDir = flag.String("tenants", "", "parent directory of per-city databases; serve them all")
		maxOpen   = flag.Int("max-open", 4, "max concurrently open tenant databases (-tenants mode)")
		addr      = flag.String("addr", "127.0.0.1:8080", "listen address")
		device    = flag.String("device", "ssd", "simulated device: hdd, ssd, ram")
		segments  = flag.String("segments", "on", "columnar label segments on the read path: on or off")
		vcache    = flag.String("vcache", "on", "resident vector cache over the segments: on or off")
		vcBytes   = flag.Int64("vcache-bytes", 0, "vector-cache budget in bytes, process-wide (0 = default)")
		poolPages = flag.Int("pool-pages", 0, "buffer-pool budget in 8 KiB pages, process-wide (0 = default)")
		inflight  = flag.Int("max-inflight", 64, "max concurrent query executions before 503")
		timeout   = flag.Duration("timeout", 5*time.Second, "per-request deadline")
		drain     = flag.Duration("drain", 10*time.Second, "graceful-shutdown window for in-flight requests")
		coalesce  = flag.String("coalesce", "on", "query-level request coalescing: on or off")
		slow      = flag.Duration("slow", 0, "log queries slower than this to stderr (0 = off)")
	)
	flag.Parse()
	if (*dbDir == "") == (*tenantDir == "") {
		fatal(fmt.Errorf("usage: ptldb-serve {-db DIR | -tenants DIR} [flags] (see source header)"))
	}
	for name, v := range map[string]string{"segments": *segments, "vcache": *vcache, "coalesce": *coalesce} {
		if v != "on" && v != "off" {
			fatal(fmt.Errorf("-%s must be on or off, got %q", name, v))
		}
	}
	cfg := ptldb.Config{
		Device: *device, SlowQueryThreshold: *slow,
		DisableSegments: *segments == "off", DisableVectorCache: *vcache == "off",
		VectorCacheBytes: *vcBytes, PoolPages: *poolPages,
	}
	opts := serve.Options{
		MaxInFlight:       *inflight,
		Timeout:           *timeout,
		DisableCoalescing: *coalesce == "off",
	}

	var (
		srv     *serve.Server
		closeDB func() error
		what    string
	)
	if *tenantDir != "" {
		router, err := tenant.New(*tenantDir, tenant.Config{
			MaxOpenTenants:   *maxOpen,
			VectorCacheBytes: *vcBytes,
			PoolPages:        *poolPages,
			Base:             cfg,
		})
		if err != nil {
			fatal(err)
		}
		srv = serve.NewMulti(router, opts)
		closeDB = router.Close
		what = fmt.Sprintf("tenants %s [%s], max-open %d", *tenantDir,
			strings.Join(router.Names(), " "), *maxOpen)
	} else {
		db, err := ptldb.Open(*dbDir, cfg)
		if err != nil {
			fatal(err)
		}
		srv = serve.New(db, opts)
		closeDB = db.Close
		what = "db " + *dbDir
	}

	l, err := net.Listen("tcp", *addr)
	if err != nil {
		_ = closeDB()
		fatal(err)
	}
	fmt.Fprintf(os.Stderr, "ptldb-serve: listening on http://%s (%s, device %s, max-inflight %d, coalesce %s)\n",
		l.Addr(), what, *device, *inflight, *coalesce)

	errc := make(chan error, 1)
	go func() { errc <- srv.Serve(l) }()

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
	select {
	case sig := <-sigc:
		fmt.Fprintf(os.Stderr, "ptldb-serve: %v, draining (up to %v)\n", sig, *drain)
		ctx, cancel := context.WithTimeout(context.Background(), *drain)
		err := srv.Shutdown(ctx)
		cancel()
		if err != nil {
			fmt.Fprintf(os.Stderr, "ptldb-serve: drain incomplete: %v\n", err)
		}
		// Serve has returned http.ErrServerClosed by now; surface anything else.
		if serr := <-errc; serr != nil && serr != http.ErrServerClosed {
			fmt.Fprintf(os.Stderr, "ptldb-serve: %v\n", serr)
		}
		if cerr := closeDB(); cerr != nil {
			fatal(cerr)
		}
		if err != nil {
			os.Exit(1)
		}
		m := srv.Metrics()
		fmt.Fprintf(os.Stderr, "ptldb-serve: drained clean (%d requests, %d executions, %d coalesced, %d rejected)\n",
			m.Requests.Load(), m.Executions.Load(), m.Coalesced.Load(), m.Rejected.Load())
	case err := <-errc:
		// The listener died without a signal (port stolen, fd pressure).
		_ = closeDB()
		fatal(err)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "ptldb-serve:", err)
	os.Exit(1)
}
