package ptldb

import (
	"fmt"
	"math/rand"
	"testing"
)

// fusedBattery replays a fixed seeded battery of all seven query types and
// returns one printable record per query, so two executors can be compared
// answer-by-answer.
func fusedBattery(t *testing.T, db *DB, tt *Network) []string {
	t.Helper()
	rng := rand.New(rand.NewSource(99))
	n := tt.NumStops()
	span := int(tt.MaxTime() - tt.MinTime())
	randTime := func() Time { return tt.MinTime() + Time(rng.Intn(span+1)) }
	var out []string

	for i := 0; i < 40; i++ {
		s, g := StopID(rng.Intn(n)), StopID(rng.Intn(n))
		t0 := randTime()
		arr, ok, err := db.EarliestArrival(s, g, t0)
		if err != nil {
			t.Fatalf("EA(%d,%d,%d): %v", s, g, t0, err)
		}
		out = append(out, fmt.Sprintf("EA %d %d %d -> %d %v", s, g, t0, arr, ok))

		dep, ok, err := db.LatestDeparture(s, g, t0)
		if err != nil {
			t.Fatalf("LD(%d,%d,%d): %v", s, g, t0, err)
		}
		out = append(out, fmt.Sprintf("LD %d %d %d -> %d %v", s, g, t0, dep, ok))

		t1 := t0 + Time(rng.Intn(span+1))
		dur, ok, err := db.ShortestDuration(s, g, t0, t1)
		if err != nil {
			t.Fatalf("SD(%d,%d,%d,%d): %v", s, g, t0, t1, err)
		}
		out = append(out, fmt.Sprintf("SD %d %d %d %d -> %d %v", s, g, t0, t1, dur, ok))
	}

	for i := 0; i < 15; i++ {
		q := StopID(rng.Intn(n))
		t0 := randTime()
		k := 1 + rng.Intn(4)
		for _, m := range []struct {
			name string
			fn   func() ([]Result, error)
		}{
			{"EAKNNNaive", func() ([]Result, error) { return db.EAKNNNaive("poi", q, t0, k) }},
			{"LDKNNNaive", func() ([]Result, error) { return db.LDKNNNaive("poi", q, t0, k) }},
			{"EAKNN", func() ([]Result, error) { return db.EAKNN("poi", q, t0, k) }},
			{"LDKNN", func() ([]Result, error) { return db.LDKNN("poi", q, t0, k) }},
			{"EAOTM", func() ([]Result, error) { return db.EAOTM("poi", q, t0) }},
			{"LDOTM", func() ([]Result, error) { return db.LDOTM("poi", q, t0) }},
		} {
			res, err := m.fn()
			if err != nil {
				t.Fatalf("%s(%d,%d,%d): %v", m.name, q, t0, k, err)
			}
			out = append(out, fmt.Sprintf("%s %d %d %d -> %v", m.name, q, t0, k, res))
		}
	}
	return out
}

// TestFusedMatchesGeneralExecutor builds one database, runs the battery with
// the fused path enabled (the default), reopens the same directory with
// DisableFusedExec, reruns the identical battery, and requires every answer
// to match. The FusedStats counters prove which executor actually served
// each handle.
func TestFusedMatchesGeneralExecutor(t *testing.T) {
	tt, err := GenerateCity("Austin", 0.01, 7)
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()

	fdb, err := Create(dir, tt, Config{Device: "ram"})
	if err != nil {
		t.Fatal(err)
	}
	n := tt.NumStops()
	targets := []StopID{StopID(1 % n), StopID(2 % n), StopID(5 % n), StopID(n - 1)}
	if err := fdb.AddTargetSet("poi", targets, 4); err != nil {
		fdb.Close()
		t.Fatal(err)
	}
	fused := fusedBattery(t, fdb, tt)
	hits, fallbacks := fdb.Store().DB.FusedStats()
	if hits == 0 {
		t.Error("fused handle recorded no fused executions")
	}
	if fallbacks != 0 {
		t.Errorf("fused handle hit %d runtime fallbacks, want 0", fallbacks)
	}
	if err := fdb.Close(); err != nil {
		t.Fatal(err)
	}

	gdb, err := Open(dir, Config{Device: "ram", DisableFusedExec: true})
	if err != nil {
		t.Fatal(err)
	}
	defer gdb.Close()
	general := fusedBattery(t, gdb, tt)
	if hits, _ := gdb.Store().DB.FusedStats(); hits != 0 {
		t.Errorf("DisableFusedExec handle recorded %d fused executions, want 0", hits)
	}

	if len(fused) != len(general) {
		t.Fatalf("battery sizes differ: %d vs %d", len(fused), len(general))
	}
	for i := range fused {
		if fused[i] != general[i] {
			t.Errorf("answer %d differs:\n  fused:   %s\n  general: %s", i, fused[i], general[i])
		}
	}
}
